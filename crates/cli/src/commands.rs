//! Subcommand implementations for the `smc` binary.

use crate::json::JsonObject;
use smc_core::batch::{check_batch, BatchResult};
use smc_core::checker::{
    format_view, CheckConfig, CheckStats, Engine, EngineKind, SchedulerKind, Verdict,
};
use smc_core::memo::MemoStats;
use smc_core::models;
use smc_core::spec::ModelSpec;
use smc_history::litmus::{parse_history, parse_suite, LitmusTest};
use smc_history::{History, Label, ProcId};
use smc_programs::bakery::bakery;
use smc_programs::interp::ProgramWorkload;
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::mem::MemorySystem;
use smc_sim::sched::run_random;
use smc_sim::workload::{Access, OpScript};
use smc_sim::{
    CausalMem, CoherentMem, HybridMem, PcMem, PramMem, RcMem, ScMem, SyncMode, TsoMem, WoMem,
};
use std::process::ExitCode;

/// Top-level usage text.
pub const USAGE: &str = "\
usage:
  smc check <file> [--model NAME] [--jobs N] [--stats]
            [--memo-file PATH] [--scheduler stealing|static]
            [--cutover N] [--engine exhaustive|saturate|auto]
                                    check a litmus history or suite;
                                    --memo-file persists decided verdicts
                                    across runs (corrupt or mismatched
                                    files are ignored with a warning);
                                    --scheduler selects the parallel
                                    search engine (default stealing)
  smc corpus [--jobs N] [--stats] [--json PATH] [--exhaustive]
            [--engine-equiv] [--memo-file PATH] [--cutover N]
            [--engine exhaustive|saturate|auto]
                                    check the embedded litmus corpus
                                    against its recorded expectations;
                                    --json writes machine-readable per-case
                                    stats + memo counters; --exhaustive
                                    sweeps the full small-history universe
                                    instead (Figure 5 models, with memoized
                                    + lattice-propagated verdicts);
                                    --engine-equiv runs both engines on
                                    every saturate-supporting model and
                                    exits nonzero on any divergence
  smc matrix <file> [--jobs N] [--stats] [--cutover N]
            [--memo-file PATH] [--engine exhaustive|saturate|auto]
                                    classification matrix for a suite
  smc explore <file> --memory NAME [--check] [--model NAME] [--jobs N]
                                    enumerate every history a machine
                                    produces for the file's program shape;
                                    --check classifies each history
  smc bakery [--memory NAME] [--n N] [--runs R] [--show-program]
                                    run the Bakery algorithm (default rcpc)
  smc separate <model-a> <model-b> [--jobs N] [--max-universe SPEC]
            [--json PATH] [--memo-file PATH] [--emit-dir DIR]
            [--no-minimize] [--scheduler stealing|static]
            [--cutover N] [--engine exhaustive|saturate|auto]
                                    search universes of increasing size for
                                    minimized witness histories one model
                                    admits and the other refutes;
                                    --max-universe is small|medium|large or
                                    an explicit PxOxLxV cap like 3x2x2x2
                                    (default medium); --emit-dir writes
                                    each witness as a litmus test file
  smc separate --all [...]          sweep every unlabeled model pair and
                                    report the full witness table
  smc monitor [<file>|-] [--model NAME] [--jobs N] [--stats]
            [--json PATH] [--max-states N] [--batch N] [--cutover N]
            [--memo-file PATH] [--engine exhaustive|saturate|auto]
            [--window N] [--checkpoint-file PATH] [--restore-from PATH]
                                    stream a trace (stdin when `-` or no
                                    file) through the incremental admission
                                    monitor; malformed lines warn with
                                    their byte offset and are skipped
                                    (counted in --stats/--json); --batch N
                                    feeds N events per monitor step;
                                    `join p`/`retire p` lines move
                                    processors in and out of the active
                                    set (retired processors fold into a
                                    summarized prefix); `@sid`-prefixed
                                    lines replay a multi-session stream,
                                    one monitor per session (warnings
                                    then name the session); --window N
                                    seals the decided prefix every N
                                    events to bound frontier memory;
                                    --checkpoint-file saves the monitor
                                    state at end of input and
                                    --restore-from resumes warm from
                                    such a file (same models required;
                                    cap and window are inherited unless
                                    overridden); exits nonzero if
                                    any model's final verdict is
                                    violated
  smc monitor --corpus [--jobs N] [--json PATH]
                                    replay every embedded litmus history
                                    through the monitor event-by-event and
                                    diff the final verdicts against the
                                    batch checker (the monitor golden gate)
  smc serve [--listen ADDR] [--workers N] [--max-sessions N]
            [--max-conns N] [--queue N] [--model NAME] [--jobs N]
            [--max-states N] [--window N] [--evict-dir DIR]
                                    run the multi-session streaming
                                    admission server: line-oriented TCP
                                    (OPEN/EV/QUERY/CLOSE, `@sid <event>`
                                    shorthand), one incremental monitor
                                    per session, bounded per-session
                                    queues (BUSY backpressure), verdicts
                                    on QUERY; SNAPSHOT/RESUME checkpoint
                                    a session to a file and resume it
                                    warm; --evict-dir spills the least
                                    recently active idle session to disk
                                    instead of refusing OPEN when
                                    --max-sessions is reached (evicted
                                    sessions resume transparently on
                                    next use); --window N bounds each
                                    session's frontier memory; stops on
                                    SHUTDOWN
  smc serve --bench [--sessions N] [--events N] [--conns C]
            [--query-every K] [--memory NAME] [--seed S] [--json PATH]
                                    start an ephemeral server, drive it
                                    with the in-tree load generator over
                                    loopback, diff every final verdict
                                    against the offline monitor, and
                                    report sustained events/sec + QUERY
                                    latency percentiles
  smc loadgen --addr HOST:PORT [--sessions N] [--events N] [--conns C]
            [--query-every K] [--memory NAME] [--seed S] [--verify]
            [--max-states N] [--shutdown] [--json PATH]
                                    drive a running `smc serve` with
                                    generated multi-session traffic;
                                    --verify diffs final verdicts
                                    against the offline monitor,
                                    --shutdown stops the server after
  smc trace gen [--memory NAME] [--procs N] [--ops N | --events N]
            [--locs L] [--values V | --alias-values K] [--seed S]
            [--sessions N] [--churn K] [--out PATH]
                                    run a random program on an operational
                                    machine and emit its arrival-order
                                    event stream in the trace format;
                                    --ops sizes per processor, --events
                                    fixes the total event count (the
                                    stream is cut to exactly N events);
                                    --alias-values folds fresh write
                                    values into a K-letter alphabet so
                                    reads-from stays heavily ambiguous;
                                    --sessions N interleaves N
                                    independent streams with @sid
                                    prefixes (the `smc serve` format);
                                    --churn K runs K+1 processor
                                    generations joined and retired over
                                    one stream (`join`/`retire` lines,
                                    for the monitor's churn folding)
  smc trace from <file> [--test NAME] [--out PATH]
                                    linearize a litmus history into the
                                    trace format (processor-major order)
  smc models                        list available models and machines

--jobs N runs checks on N worker threads (default 1; results are
reported in the same order as sequential checking). With more workers
than (history, model) pairs, the workers move inside each check: the
work-stealing scheduler splits the extension search itself.

--cutover N bounds the sequential probe a parallel check (--jobs > 1)
runs before spawning workers: if the probe decides within N search
nodes the check never pays thread or shared-pool setup (default 4096;
0 always fans out immediately).

--engine picks the checking backend: `exhaustive` enumerates schedules,
`saturate` decides by order-constraint propagation (no enumeration; it
handles unlabeled models without release-consistency or fence structure
and scales to 100-1000-op histories), `auto` (the default) saturates
when the model is supported and the history is big enough to repay it
(more than 16 operations for models with a global store order or
coherence, more than 32 for structure-free models like SC and PRAM),
else stays exhaustive.

memories for --memory: sc tso tso-fwd pram causal pc coherent rcsc rcpc wo hybrid";

/// Dispatch on the first argument.
pub fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("corpus") => cmd_corpus(&args[1..]),
        Some("matrix") => cmd_matrix(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("bakery") => cmd_bakery(&args[1..]),
        Some("separate") => cmd_separate(&args[1..]),
        Some("monitor") => cmd_monitor(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("models") => cmd_models(),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`")),
        None => Err("missing subcommand".into()),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(a);
    }
    out
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

/// Parse a file as a suite if it contains `test` blocks, else as a bare
/// history wrapped in an anonymous test.
fn load(path: &str) -> Result<Vec<LitmusTest>, String> {
    let text = read_file(path)?;
    let looks_like_suite = text
        .lines()
        .map(str::trim_start)
        .any(|l| l.starts_with("test"));
    if looks_like_suite {
        parse_suite(&text).map_err(|e| e.to_string())
    } else {
        let history = parse_history(&text).map_err(|e| e.to_string())?;
        Ok(vec![LitmusTest {
            name: path.to_owned(),
            description: String::new(),
            history,
            expectations: Vec::new(),
        }])
    }
}

fn resolve_models(selector: Option<&str>) -> Result<Vec<ModelSpec>, String> {
    match selector {
        None | Some("all") => Ok(models::all_models()),
        Some(name) => models::by_name(name)
            .map(|m| vec![m])
            .ok_or_else(|| format!("unknown model `{name}` (try `smc models`)")),
    }
}

/// Parse `--jobs N` (default 1 = sequential).
fn jobs_flag(args: &[String]) -> Result<usize, String> {
    match flag_value(args, "--jobs") {
        None if args.iter().any(|a| a == "--jobs") => Err("--jobs requires a value".to_string()),
        None => Ok(1),
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--jobs: `{v}` is not a positive integer")),
    }
}

fn render_stats(stats: &CheckStats) -> String {
    let mut s = format!(
        "{} nodes, {} rf assignment(s), {:.1?}",
        stats.nodes_spent, stats.rf_assignments_tried, stats.wall
    );
    if stats.rf_truncated {
        s.push_str(", rf truncated");
    }
    // Cutover decision: `ran_sequential` means the check answered without
    // spawning workers (jobs 1, or the bounded probe decided). A non-zero
    // probe count without it means the probe exhausted and workers were
    // spawned anyway. Plain sequential runs take no cutover decision, so
    // print nothing for them.
    if stats.ran_sequential {
        if stats.probe_nodes > 0 {
            s.push_str(&format!(
                ", ran sequential (cutover probe: {} nodes)",
                stats.probe_nodes
            ));
        } else {
            s.push_str(", ran sequential");
        }
    } else if stats.probe_nodes > 0 {
        s.push_str(&format!(
            ", cutover probe exhausted ({} nodes), fanned out",
            stats.probe_nodes
        ));
    }
    // Failed-set counters only mean something when the work-stealing
    // scheduler actually ran; the static and sequential paths never
    // touch the set, and printing their zeros would imply it did.
    if stats.work_stealing_ran {
        let fs = stats.failed_set;
        s.push_str(&format!(
            ", failed-set {} hits/{} misses/{} inserts/{} evictions",
            fs.hits, fs.misses, fs.inserts, fs.evictions
        ));
    }
    // The engine line only matters when the saturation backend ran; the
    // exhaustive engine is the default and its saturation counters are
    // structurally zero.
    if stats.engine_used == Engine::Saturate {
        s.push_str(&format!(
            ", engine saturate ({} closure steps, {} branches, {} wakeups, \
             {} conflicts, {} learned, {} restarts)",
            stats.saturation_steps,
            stats.saturation_branches,
            stats.saturation_wakeups,
            stats.saturation_conflicts,
            stats.saturation_learned,
            stats.saturation_restarts
        ));
    }
    if let Some(stage) = stats.exhausted_stage {
        s.push_str(&format!(", exhausted in {stage}"));
    }
    s
}

/// Check every (test × model) pair of a suite on `jobs` threads; results
/// come back indexed test-major, matching the sequential print order.
/// With more workers than pairs, batch-level fan-out would leave threads
/// idle, so the workers move *inside* each check instead (the
/// work-stealing scheduler splits the extension search itself).
fn check_suite(
    suite: &[LitmusTest],
    model_list: &[ModelSpec],
    cfg: &CheckConfig,
    jobs: usize,
) -> Vec<BatchResult> {
    let pairs: Vec<(&History, &ModelSpec)> = suite
        .iter()
        .flat_map(|t| model_list.iter().map(move |m| (&t.history, m)))
        .collect();
    if jobs > 1 && pairs.len() < jobs {
        return pairs
            .iter()
            .enumerate()
            .map(|(index, (h, m))| {
                let (verdict, stats) = smc_core::batch::check_parallel(h, m, cfg, jobs);
                BatchResult {
                    index,
                    verdict,
                    stats,
                }
            })
            .collect();
    }
    check_batch(&pairs, cfg, jobs)
}

/// Parse `--cutover N` (default: `CheckConfig`'s probe budget). 0 means
/// parallel checks fan out immediately, skipping the sequential probe.
fn cutover_flag(args: &[String], default: u64) -> Result<u64, String> {
    match flag_value(args, "--cutover") {
        None if args.iter().any(|a| a == "--cutover") => {
            Err("--cutover requires a value".to_string())
        }
        None => Ok(default),
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("--cutover: `{v}` is not a non-negative integer")),
    }
}

/// Parse `--scheduler stealing|static` (default stealing).
fn scheduler_flag(args: &[String]) -> Result<SchedulerKind, String> {
    match flag_value(args, "--scheduler") {
        None => Ok(SchedulerKind::WorkStealing),
        Some("stealing") => Ok(SchedulerKind::WorkStealing),
        Some("static") => Ok(SchedulerKind::StaticPrefix),
        Some(other) => Err(format!(
            "--scheduler: `{other}` is not `stealing` or `static`"
        )),
    }
}

/// Parse `--engine exhaustive|saturate|auto` (default auto).
fn engine_flag(args: &[String]) -> Result<EngineKind, String> {
    match flag_value(args, "--engine") {
        None if args.iter().any(|a| a == "--engine") => Err("--engine requires a value".into()),
        None | Some("auto") => Ok(EngineKind::Auto),
        Some("exhaustive") => Ok(EngineKind::Exhaustive),
        Some("saturate") => Ok(EngineKind::Saturate),
        Some(other) => Err(format!(
            "--engine: `{other}` is not `exhaustive`, `saturate` or `auto`"
        )),
    }
}

/// The checking flags every checking subcommand (`check`, `corpus`,
/// `matrix`, `separate`, `monitor`) accepts. Parsed in one place so the
/// commands cannot drift apart in spelling, defaults or error messages.
struct CheckFlags {
    jobs: usize,
    scheduler: SchedulerKind,
    cutover: u64,
    engine: EngineKind,
    memo_file: Option<String>,
}

impl CheckFlags {
    fn parse(args: &[String]) -> Result<Self, String> {
        Ok(CheckFlags {
            jobs: jobs_flag(args)?,
            scheduler: scheduler_flag(args)?,
            cutover: cutover_flag(args, CheckConfig::default().parallel_cutover)?,
            engine: engine_flag(args)?,
            memo_file: flag_value(args, "--memo-file").map(str::to_owned),
        })
    }

    /// Copy the parsed flags into a config (memo attachment stays the
    /// caller's decision — see [`CheckFlags::with_memo_if_requested`]).
    fn configure(&self, cfg: &mut CheckConfig) {
        cfg.scheduler = self.scheduler;
        cfg.parallel_cutover = self.cutover;
        cfg.engine = self.engine;
    }

    /// Attach a memo cache when `--memo-file` was given (commands that
    /// always memoize call `.with_memo()` themselves).
    fn with_memo_if_requested(&self, cfg: CheckConfig) -> CheckConfig {
        if self.memo_file.is_some() {
            cfg.with_memo()
        } else {
            cfg
        }
    }

    fn memo_file(&self) -> Option<&str> {
        self.memo_file.as_deref()
    }
}

/// Load `--memo-file` into `cfg`'s cache if the flag is present. A
/// missing file is a cold start; a corrupt or mismatched file is ignored
/// with a warning — persistence must never fail a check.
fn memo_file_load(cfg: &CheckConfig, path: Option<&str>) {
    let (Some(path), Some(memo)) = (path, &cfg.memo) else {
        return;
    };
    if !std::path::Path::new(path).exists() {
        return;
    }
    match memo.load(std::path::Path::new(path)) {
        Ok(n) => eprintln!("memo: loaded {n} cached verdict(s) from {path}"),
        Err(e) => eprintln!("warning: ignoring memo file: {e}"),
    }
}

/// Save `cfg`'s cache back to `--memo-file`, if the flag is present.
fn memo_file_save(cfg: &CheckConfig, path: Option<&str>) {
    let (Some(path), Some(memo)) = (path, &cfg.memo) else {
        return;
    };
    match memo.save(std::path::Path::new(path)) {
        Ok(n) => eprintln!("memo: saved {n} cached verdict(s) to {path}"),
        Err(e) => eprintln!("warning: could not save memo file `{path}`: {e}"),
    }
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("check: missing <file>")?;
    let model_list = resolve_models(flag_value(args, "--model"))?;
    let flags = CheckFlags::parse(args)?;
    let jobs = flags.jobs;
    let show_stats = args.iter().any(|a| a == "--stats");
    let mut cfg = flags.with_memo_if_requested(CheckConfig::default());
    flags.configure(&mut cfg);
    memo_file_load(&cfg, flags.memo_file());
    let suite = load(path)?;
    let results = check_suite(&suite, &model_list, &cfg, jobs);
    memo_file_save(&cfg, flags.memo_file());
    let mut failures = 0;
    for (ti, t) in suite.iter().enumerate() {
        println!("== {} ==", t.name);
        for line in t.history.to_string().lines() {
            println!("    {line}");
        }
        for (mi, m) in model_list.iter().enumerate() {
            let r = &results[ti * model_list.len() + mi];
            let v = &r.verdict;
            let cell = match v {
                Verdict::Allowed(_) => "allowed".to_owned(),
                Verdict::Disallowed => "forbidden".to_owned(),
                Verdict::Exhausted => "undecided (budget)".to_owned(),
                Verdict::Unsupported(e) => format!("unsupported: {e}"),
            };
            let expect = t.expectation(&m.name);
            let marker = match (expect, v.decided()) {
                (Some(e), Some(g)) if e == g => "  [expected]",
                (Some(_), _) => {
                    failures += 1;
                    "  [MISMATCH]"
                }
                _ => "",
            };
            println!("  {:<16} {cell}{marker}", m.name);
            if show_stats {
                println!("                   ({})", render_stats(&r.stats));
            }
            if model_list.len() == 1 {
                match v {
                    Verdict::Allowed(w) => {
                        for (p, view) in w.views.iter().enumerate() {
                            println!("    {}", format_view(&t.history, ProcId(p as u32), view));
                        }
                    }
                    Verdict::Disallowed => {
                        if let Some(cert) = smc_core::explain::explain_disallowed(&t.history, m) {
                            println!("    {}", cert.render(&t.history));
                        }
                    }
                    _ => {}
                }
            }
        }
        println!();
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} expectation(s) failed");
        ExitCode::FAILURE
    })
}

fn memo_json(memo: &MemoStats) -> String {
    JsonObject::new()
        .num("hits", memo.hits)
        .num("misses", memo.misses)
        .num("inserts", memo.inserts)
        .num("evictions", memo.evictions)
        .finish()
}

fn verdict_word(v: &Verdict) -> &'static str {
    match v {
        Verdict::Allowed(_) => "allowed",
        Verdict::Disallowed => "forbidden",
        Verdict::Exhausted => "exhausted",
        Verdict::Unsupported(_) => "unsupported",
    }
}

fn cmd_corpus(args: &[String]) -> Result<ExitCode, String> {
    let flags = CheckFlags::parse(args)?;
    let jobs = flags.jobs;
    let show_stats = args.iter().any(|a| a == "--stats");
    let json_path = flag_value(args, "--json");
    if args.iter().any(|a| a == "--engine-equiv") {
        return corpus_engine_equiv(&flags, json_path);
    }
    if args.iter().any(|a| a == "--exhaustive") {
        return corpus_exhaustive(jobs, show_stats, json_path, flags.cutover);
    }
    // Decided verdicts are renaming-invariant, so the memo is safe here:
    // expectations compare only allowed/forbidden, never the witness.
    let mut cfg = CheckConfig::default().with_memo();
    flags.configure(&mut cfg);
    let memo = cfg.memo.clone().expect("with_memo attaches a cache");
    memo_file_load(&cfg, flags.memo_file());
    let suite = smc_programs::corpus::litmus_suite();
    let model_list = models::all_models();
    let results = check_suite(&suite, &model_list, &cfg, jobs);
    memo_file_save(&cfg, flags.memo_file());
    let mut failures = 0;
    let mut checked = 0;
    let mut nodes = 0u64;
    let mut json_lines: Vec<String> = Vec::new();
    for (ti, t) in suite.iter().enumerate() {
        for (mi, m) in model_list.iter().enumerate() {
            let r = &results[ti * model_list.len() + mi];
            nodes += r.stats.nodes_spent;
            if json_path.is_some() {
                json_lines.push(
                    JsonObject::new()
                        .str("test", &t.name)
                        .str("model", &m.name)
                        .str("verdict", verdict_word(&r.verdict))
                        .num("nodes", r.stats.nodes_spent)
                        .num("rf_tried", r.stats.rf_assignments_tried as u64)
                        .num("wall_us", r.stats.wall.as_micros() as u64)
                        .bool("memo_hit", r.stats.memo_hit)
                        .bool("ran_sequential", r.stats.ran_sequential)
                        .num("probe_nodes", r.stats.probe_nodes)
                        .str("engine", &r.stats.engine_used.to_string())
                        .num("saturation_steps", r.stats.saturation_steps)
                        .num("saturation_branches", r.stats.saturation_branches)
                        .num("saturation_wakeups", r.stats.saturation_wakeups)
                        .num("saturation_conflicts", r.stats.saturation_conflicts)
                        .num("saturation_learned", r.stats.saturation_learned)
                        .num("saturation_restarts", r.stats.saturation_restarts)
                        .finish(),
                );
            }
            let Some(expected) = t.expectation(&m.name) else {
                continue;
            };
            checked += 1;
            match r.verdict.decided() {
                Some(got) if got == expected => {}
                Some(_) => {
                    failures += 1;
                    println!(
                        "MISMATCH {}: {} expected {}, got {}",
                        t.name,
                        m.name,
                        if expected { "allowed" } else { "forbidden" },
                        if expected { "forbidden" } else { "allowed" },
                    );
                }
                None => {
                    failures += 1;
                    println!(
                        "UNDECIDED {}: {} ({})",
                        t.name,
                        m.name,
                        render_stats(&r.stats)
                    );
                }
            }
        }
    }
    let memo_stats = memo.stats();
    if let Some(path) = json_path {
        json_lines.push(
            JsonObject::new()
                .num("tests", suite.len() as u64)
                .num("models", model_list.len() as u64)
                .num("checked", checked as u64)
                .num("failures", failures as u64)
                .num("total_nodes", nodes)
                .raw("memo", &memo_json(&memo_stats))
                .finish(),
        );
        let mut text = json_lines.join("\n");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    println!(
        "corpus: {} tests × {} models, {} expectation(s) checked, {} failure(s){}",
        suite.len(),
        model_list.len(),
        checked,
        failures,
        if jobs > 1 {
            format!(" [{jobs} jobs]")
        } else {
            String::new()
        }
    );
    if show_stats {
        println!("total search nodes: {nodes}");
        println!(
            "memo: {} hits, {} misses, {} inserts, {} evictions",
            memo_stats.hits, memo_stats.misses, memo_stats.inserts, memo_stats.evictions
        );
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `smc corpus --engine-equiv`: the engine drift gate. Every embedded
/// litmus history is checked by both the exhaustive checker and the
/// saturation engine on every model that advertises saturate support;
/// wherever both decide they must agree, saturate must never report
/// `Unsupported` there, and every saturate `Allowed` witness must pass
/// the independent verifier. Exits nonzero on any divergence.
fn corpus_engine_equiv(flags: &CheckFlags, json_path: Option<&str>) -> Result<ExitCode, String> {
    use smc_core::verify::verify_witness;

    let mut ex_cfg = CheckConfig {
        engine: EngineKind::Exhaustive,
        ..CheckConfig::default()
    };
    let mut sat_cfg = CheckConfig {
        engine: EngineKind::Saturate,
        ..CheckConfig::default()
    };
    for cfg in [&mut ex_cfg, &mut sat_cfg] {
        cfg.scheduler = flags.scheduler;
        cfg.parallel_cutover = flags.cutover;
    }
    let suite = smc_programs::corpus::litmus_suite();
    let model_list = models::saturating_models();
    let ex = check_suite(&suite, &model_list, &ex_cfg, flags.jobs);
    let sat = check_suite(&suite, &model_list, &sat_cfg, flags.jobs);

    let mut pairs = 0usize;
    let mut divergences = 0usize;
    let mut json_lines: Vec<String> = Vec::new();
    for (ti, t) in suite.iter().enumerate() {
        for (mi, m) in model_list.iter().enumerate() {
            let e = &ex[ti * model_list.len() + mi];
            let s = &sat[ti * model_list.len() + mi];
            pairs += 1;
            let mut problem: Option<String> = None;
            if let Verdict::Unsupported(msg) = &s.verdict {
                problem = Some(format!("saturate refused a supported model: {msg}"));
            } else if let (Some(a), Some(b)) = (e.verdict.decided(), s.verdict.decided()) {
                if a != b {
                    problem = Some(format!(
                        "exhaustive says {}, saturate says {}",
                        verdict_word(&e.verdict),
                        verdict_word(&s.verdict)
                    ));
                }
            }
            if problem.is_none() {
                if let Verdict::Allowed(w) = &s.verdict {
                    if let Err(err) = verify_witness(&t.history, m, w) {
                        problem = Some(format!("saturate witness rejected: {err}"));
                    }
                }
            }
            if let Some(msg) = &problem {
                divergences += 1;
                println!("DIVERGENCE {}: {}: {msg}", t.name, m.name);
            }
            if json_path.is_some() {
                json_lines.push(
                    JsonObject::new()
                        .str("test", &t.name)
                        .str("model", &m.name)
                        .str("exhaustive", verdict_word(&e.verdict))
                        .str("saturate", verdict_word(&s.verdict))
                        .num("saturation_steps", s.stats.saturation_steps)
                        .num("saturation_branches", s.stats.saturation_branches)
                        .num("saturation_wakeups", s.stats.saturation_wakeups)
                        .num("saturation_conflicts", s.stats.saturation_conflicts)
                        .num("saturation_learned", s.stats.saturation_learned)
                        .num("saturation_restarts", s.stats.saturation_restarts)
                        .bool("diverged", problem.is_some())
                        .finish(),
                );
            }
        }
    }
    println!(
        "engine-equiv: {} tests × {} saturating models = {} pairs, {} divergence(s){}",
        suite.len(),
        model_list.len(),
        pairs,
        divergences,
        if flags.jobs > 1 {
            format!(" [{} jobs]", flags.jobs)
        } else {
            String::new()
        }
    );
    if let Some(path) = json_path {
        json_lines.push(
            JsonObject::new()
                .num("pairs", pairs as u64)
                .num("divergences", divergences as u64)
                .finish(),
        );
        let mut text = json_lines.join("\n");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    Ok(if divergences == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `smc corpus --exhaustive`: classify the full universe of small
/// histories (2 processors × 2 ops × 2 locations × 1 value) against the
/// Figure 5 models, with the memo table and lattice propagation on. One
/// JSON line per history carries the verdict row, so a checked-in golden
/// file can detect verdict drift between revisions.
fn corpus_exhaustive(
    jobs: usize,
    show_stats: bool,
    json_path: Option<&str>,
    cutover: u64,
) -> Result<ExitCode, String> {
    let params = smc_core::histgen::GenParams {
        procs: 2,
        ops_per_proc: 2,
        locs: 2,
        values: 1,
    };
    let corpus = smc_core::histgen::all_histories(&params);
    let model_list = models::figure5_models();
    let mut cfg = CheckConfig::default().with_memo();
    cfg.parallel_cutover = cutover;
    let memo = cfg.memo.clone().expect("with_memo attaches a cache");
    let (classifications, prop) =
        smc_core::lattice::classify_all_propagating(&corpus, &model_list, &cfg, jobs);

    let mut undecided = 0usize;
    let mut json_lines: Vec<String> = Vec::new();
    for (hi, c) in classifications.iter().enumerate() {
        if c.allowed.iter().any(Option::is_none) {
            undecided += 1;
        }
        if json_path.is_some() {
            let row: Vec<String> = model_list
                .iter()
                .zip(&c.allowed)
                .map(|(m, a)| {
                    format!(
                        "{}:{}",
                        m.name,
                        match a {
                            Some(true) => "y",
                            Some(false) => "n",
                            None => "?",
                        }
                    )
                })
                .collect();
            json_lines.push(
                JsonObject::new()
                    .num("index", hi as u64)
                    .str("history", &corpus[hi].to_string().replace('\n', "; "))
                    .str("verdicts", &row.join(" "))
                    .finish(),
            );
        }
    }
    let memo_stats = memo.stats();
    if let Some(path) = json_path {
        json_lines.push(
            JsonObject::new()
                .num("histories", corpus.len() as u64)
                .num("models", model_list.len() as u64)
                .num("undecided", undecided as u64)
                .num("checked", prop.checked)
                .num("propagated", prop.propagated)
                .raw("memo", &memo_json(&memo_stats))
                .finish(),
        );
        let mut text = json_lines.join("\n");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    println!(
        "exhaustive: {} histories × {} models, {} checked, {} propagated, {} undecided{}",
        corpus.len(),
        model_list.len(),
        prop.checked,
        prop.propagated,
        undecided,
        if jobs > 1 {
            format!(" [{jobs} jobs]")
        } else {
            String::new()
        }
    );
    if show_stats {
        println!(
            "memo: {} hits, {} misses, {} inserts, {} evictions",
            memo_stats.hits, memo_stats.misses, memo_stats.inserts, memo_stats.evictions
        );
    }
    Ok(if undecided == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_matrix(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("matrix: missing <file>")?;
    let flags = CheckFlags::parse(args)?;
    let jobs = flags.jobs;
    let show_stats = args.iter().any(|a| a == "--stats");
    let suite = load(path)?;
    let model_list = models::all_models();
    let mut cfg = if show_stats || flags.memo_file.is_some() {
        CheckConfig::default().with_memo()
    } else {
        CheckConfig::default()
    };
    flags.configure(&mut cfg);
    memo_file_load(&cfg, flags.memo_file());
    let results = check_suite(&suite, &model_list, &cfg, jobs);
    memo_file_save(&cfg, flags.memo_file());
    let name_w = suite.iter().map(|t| t.name.len()).max().unwrap_or(7).max(7);
    print!("{:<name_w$}", "history");
    for m in &model_list {
        print!(" {:>14}", m.name);
    }
    if show_stats {
        print!(" {:>12}", "nodes");
    }
    println!();
    let mut nodes = 0u64;
    for (ti, t) in suite.iter().enumerate() {
        print!("{:<name_w$}", t.name);
        let mut row_nodes = 0u64;
        for mi in 0..model_list.len() {
            let r = &results[ti * model_list.len() + mi];
            row_nodes += r.stats.nodes_spent;
            let cell = match &r.verdict {
                Verdict::Allowed(_) => "yes",
                Verdict::Disallowed => "no",
                Verdict::Exhausted => "?",
                Verdict::Unsupported(_) => "n/a",
            };
            print!(" {cell:>14}");
        }
        if show_stats {
            print!(" {row_nodes:>12}");
        }
        nodes += row_nodes;
        println!();
    }
    if show_stats {
        println!("total search nodes: {nodes}");
        if let Some(memo) = &cfg.memo {
            let s = memo.stats();
            println!(
                "memo: {} hits, {} misses, {} inserts, {} evictions",
                s.hits, s.misses, s.inserts, s.evictions
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Turn a history into the program shape that generated it: per-processor
/// access lists (write values kept, read values ignored).
fn to_script(h: &History) -> OpScript {
    let threads = (0..h.num_procs())
        .map(|p| {
            h.proc_ops(ProcId(p as u32))
                .iter()
                .map(|o| Access {
                    kind: o.kind,
                    loc: o.loc,
                    value: o.value,
                    label: o.label,
                })
                .collect()
        })
        .collect();
    OpScript::new(threads, h.num_locs())
}

fn cmd_explore(args: &[String]) -> Result<ExitCode, String> {
    let pos = positional(args);
    let path = pos.first().ok_or("explore: missing <file>")?;
    let memory = flag_value(args, "--memory").ok_or("explore: missing --memory NAME")?;
    let do_check = args.iter().any(|a| a == "--check");
    let jobs = jobs_flag(args)?;
    let tests = load(path)?;
    let t = tests.first().ok_or("explore: file contains no history")?;
    let script = to_script(&t.history);
    let (n, l) = (t.history.num_procs(), t.history.num_locs());
    let cfg = ExploreConfig::default();

    fn go<M: MemorySystem>(
        mem: M,
        script: &OpScript,
        cfg: &ExploreConfig,
    ) -> (String, smc_sim::explore::ExploreOutcome) {
        let name = mem.name();
        (name, explore(&mem, script, cfg))
    }

    let (mem_name, out) = match memory {
        "sc" => go(ScMem::new(n, l), &script, &cfg),
        "tso" => go(TsoMem::new(n, l), &script, &cfg),
        "tso-fwd" => go(TsoMem::with_forwarding(n, l), &script, &cfg),
        "pram" => go(PramMem::new(n, l), &script, &cfg),
        "causal" => go(CausalMem::new(n, l), &script, &cfg),
        "pc" => go(PcMem::new(n, l), &script, &cfg),
        "coherent" => go(CoherentMem::new(n, l), &script, &cfg),
        "rcsc" => go(RcMem::new(SyncMode::Sc, n, l), &script, &cfg),
        "rcpc" => go(RcMem::new(SyncMode::Pc, n, l), &script, &cfg),
        "wo" => go(WoMem::new(n, l), &script, &cfg),
        "hybrid" => go(HybridMem::new(n, l), &script, &cfg),
        other => return Err(format!("unknown memory `{other}`")),
    };
    println!(
        "{}: {} distinct histories over {} states{}{}",
        mem_name,
        out.histories.len(),
        out.states_explored,
        if out.truncated { " (TRUNCATED)" } else { "" },
        if out.bounded { " (bounded)" } else { "" },
    );
    if !do_check {
        for h in &out.histories {
            for line in h.to_string().lines() {
                println!("    {line}");
            }
            println!();
        }
        return Ok(ExitCode::SUCCESS);
    }

    // --check: classify every explored history against the models, using
    // the batch engine (explored histories come out in a deterministic
    // order, and batch results preserve input order).
    let model_list = resolve_models(flag_value(args, "--model"))?;
    let check_cfg = CheckConfig::default();
    let results = smc_core::batch::check_matrix(&out.histories, &model_list, &check_cfg, jobs);
    print!("{:<8}", "");
    for m in &model_list {
        print!(" {:>14}", m.name);
    }
    println!();
    for (hi, h) in out.histories.iter().enumerate() {
        print!("#{hi:<7}");
        for mi in 0..model_list.len() {
            let cell = match &results[hi * model_list.len() + mi].verdict {
                Verdict::Allowed(_) => "yes",
                Verdict::Disallowed => "no",
                Verdict::Exhausted => "?",
                Verdict::Unsupported(_) => "n/a",
            };
            print!(" {cell:>14}");
        }
        println!();
        for line in h.to_string().lines() {
            println!("    {line}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_bakery(args: &[String]) -> Result<ExitCode, String> {
    let n: usize = flag_value(args, "--n")
        .unwrap_or("2")
        .parse()
        .map_err(|_| "--n: not a number")?;
    let runs: u64 = flag_value(args, "--runs")
        .unwrap_or("1000")
        .parse()
        .map_err(|_| "--runs: not a number")?;
    let memory = flag_value(args, "--memory").unwrap_or("rcpc");
    let program = bakery(n, Label::Labeled);
    let locs = program.num_locs();
    if args.iter().any(|a| a == "--show-program") {
        println!("{program}");
    }

    fn trial<M: MemorySystem>(
        make: impl Fn() -> M,
        program: &smc_programs::Program,
        runs: u64,
    ) -> (u64, Option<(u64, String, History)>) {
        let mut violations = 0;
        let mut first = None;
        for seed in 0..runs {
            let w = ProgramWorkload::new(program.clone(), 200);
            let r = run_random(make(), w, seed, 200_000);
            if let Some(v) = r.violation {
                violations += 1;
                if first.is_none() {
                    first = Some((seed, v, r.history));
                }
            }
        }
        (violations, first)
    }

    let (violations, first) = match memory {
        "sc" => trial(|| ScMem::new(n, locs), &program, runs),
        "tso" => trial(|| TsoMem::new(n, locs), &program, runs),
        "rcsc" => trial(|| RcMem::new(SyncMode::Sc, n, locs), &program, runs),
        "rcpc" => trial(|| RcMem::new(SyncMode::Pc, n, locs), &program, runs),
        "wo" => trial(|| WoMem::new(n, locs), &program, runs),
        "hybrid" => trial(|| HybridMem::new(n, locs), &program, runs),
        other => return Err(format!("bakery: unsupported memory `{other}`")),
    };
    println!("Bakery n={n} on {memory}: {violations}/{runs} runs violated mutual exclusion");
    if let Some((seed, msg, history)) = first {
        println!("first violation (seed {seed}): {msg}");
        for line in history.to_string().lines() {
            println!("    {line}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `smc separate`: search for model-separation witness histories.
fn cmd_separate(args: &[String]) -> Result<ExitCode, String> {
    use smc_core::separate::{DirectionStatus, Separator};

    // `positional` treats the word after any `--flag` as its value, which
    // would swallow a model name after the boolean `--all`/`--no-minimize`;
    // collect positionals against the explicit value-flag list instead.
    const VALUE_FLAGS: [&str; 8] = [
        "--jobs",
        "--max-universe",
        "--json",
        "--memo-file",
        "--emit-dir",
        "--scheduler",
        "--cutover",
        "--engine",
    ];
    let pos = positionals_with(args, &VALUE_FLAGS);
    let all = args.iter().any(|a| a == "--all");
    let model_list: Vec<ModelSpec> = if all {
        if !pos.is_empty() {
            return Err("separate: --all takes no model arguments".into());
        }
        models::lattice_models()
    } else {
        let [a, b] = pos[..] else {
            return Err("separate: expected <model-a> <model-b>, or --all".into());
        };
        let ma =
            models::by_name(a).ok_or_else(|| format!("unknown model `{a}` (try `smc models`)"))?;
        let mb =
            models::by_name(b).ok_or_else(|| format!("unknown model `{b}` (try `smc models`)"))?;
        if ma.name == mb.name {
            return Err(format!(
                "`{a}` and `{b}` are both {} — nothing to separate",
                ma.name
            ));
        }
        vec![ma, mb]
    };
    let flags = CheckFlags::parse(args)?;
    let jobs = flags.jobs;
    let spec = flag_value(args, "--max-universe").unwrap_or("medium");
    let universes = smc_core::separate::ladder(spec).map_err(|e| format!("--max-universe: {e}"))?;
    let json_path = flag_value(args, "--json");
    let minimize = !args.iter().any(|a| a == "--no-minimize");
    let emit_dir = flag_value(args, "--emit-dir");
    let mut cfg = CheckConfig::default().with_memo();
    flags.configure(&mut cfg);
    memo_file_load(&cfg, flags.memo_file());

    let t0 = std::time::Instant::now();
    let mut sep = Separator::new(model_list.clone(), cfg.clone(), jobs);
    let impossible = sep.directions().len() - sep.open_directions();
    println!(
        "separating {} model(s): {} direction(s) to decide, {} impossible by known inclusions",
        model_list.len(),
        sep.open_directions(),
        impossible
    );
    for u in &universes {
        if sep.open_directions() == 0 {
            break;
        }
        println!(
            "universe {:>7}: {} histories (~{} symmetry classes), {} direction(s) open",
            u.label(),
            u.universe_size(),
            u.reduced_universe_estimate(),
            sep.open_directions()
        );
        let resolved = sep.run_universe(u);
        if resolved > 0 {
            println!("    -> {resolved} direction(s) witnessed");
        }
    }
    if minimize {
        sep.minimize_found();
    }
    memo_file_save(&cfg, flags.memo_file());
    let wall = t0.elapsed();
    let last_label = universes.last().map_or_else(String::new, |u| u.label());

    println!();
    let mut found = 0usize;
    let mut json_lines: Vec<String> = Vec::new();
    for d in sep.directions() {
        let a = &model_list[d.admits].name;
        let r = &model_list[d.refutes].name;
        let mut line = JsonObject::new().str("admits", a).str("refutes", r);
        match &d.status {
            DirectionStatus::Impossible => {
                println!(
                    "{a} ⊆ {r} is a known inclusion — no {a}-admits/{r}-refutes witness can exist"
                );
                line = line.str("status", "impossible");
            }
            DirectionStatus::Open => {
                println!(
                    "{a} admits / {r} refutes: no witness up to {last_label} (consistent with {a} ⊆ {r})"
                );
                line = line.str("status", "open");
            }
            DirectionStatus::Found(w) => {
                found += 1;
                println!(
                    "{a} admits / {r} refutes: witness in {} (index {}{}):",
                    w.universe.label(),
                    w.index,
                    if w.minimized { ", minimized" } else { "" }
                );
                for l in w.history.to_string().lines() {
                    println!("    {l}");
                }
                line = line
                    .str("status", "found")
                    .str("universe", &w.universe.label())
                    .num("index", w.index)
                    .num("ops", w.history.num_ops() as u64)
                    .str("witness", &w.history.to_string());
            }
        }
        json_lines.push(line.finish());
    }
    if model_list.len() == 2 {
        let status = |admits: usize, refutes: usize| {
            &sep.directions()
                .iter()
                .find(|d| d.admits == admits && d.refutes == refutes)
                .expect("pair directions exist")
                .status
        };
        let ab = matches!(status(0, 1), DirectionStatus::Found(_));
        let ba = matches!(status(1, 0), DirectionStatus::Found(_));
        let (a, b) = (&model_list[0].name, &model_list[1].name);
        println!();
        match (ab, ba) {
            (true, true) => println!("=> {a} and {b} are incomparable: each admits a history the other refutes"),
            (false, true) => println!("=> {a} is strictly stronger than {b} on the searched universes ({a} ⊆ {b}, and {b} admits a history {a} refutes)"),
            (true, false) => println!("=> {b} is strictly stronger than {a} on the searched universes ({b} ⊆ {a}, and {a} admits a history {b} refutes)"),
            (false, false) => println!("=> {a} and {b} are indistinguishable up to {last_label}"),
        }
    }

    let st = sep.stats;
    println!(
        "\nscanned {} histories ({} skipped by form, {} unexplainable) -> {} classes ({} repeat encounters), {} checks + {} propagated, {} undecided in {:.1?}{}",
        st.enumerated,
        st.skipped_form,
        st.skipped_unexplainable,
        st.classes,
        st.class_hits,
        st.checked,
        st.propagated,
        st.undecided,
        wall,
        if jobs > 1 { format!(" [{jobs} jobs]") } else { String::new() }
    );

    if let Some(path) = json_path {
        json_lines.push(
            JsonObject::new()
                .num("models", model_list.len() as u64)
                .num("directions", sep.directions().len() as u64)
                .num("found", found as u64)
                .num("enumerated", st.enumerated)
                .num("skipped_form", st.skipped_form)
                .num("skipped_unexplainable", st.skipped_unexplainable)
                .num("classes", st.classes)
                .num("class_hits", st.class_hits)
                .num("checked", st.checked)
                .num("propagated", st.propagated)
                .num("undecided", st.undecided)
                .num("wall_ms", wall.as_millis() as u64)
                .finish(),
        );
        let mut text = json_lines.join("\n");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }

    if let Some(dir) = emit_dir {
        emit_separation_files(dir, &model_list, &sep)?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Write each separated pair's witnesses to `<dir>/<a>_vs_<b>.litmus` as
/// litmus tests with `expect` lines for both models.
fn emit_separation_files(
    dir: &str,
    model_list: &[ModelSpec],
    sep: &smc_core::separate::Separator,
) -> Result<(), String> {
    use smc_core::separate::DirectionStatus;
    use smc_history::litmus::emit_litmus_test;
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create `{dir}`: {e}"))?;
    for a in 0..model_list.len() {
        for b in a + 1..model_list.len() {
            let mut text = String::new();
            for d in sep.directions() {
                let pair = (d.admits == a && d.refutes == b) || (d.admits == b && d.refutes == a);
                let DirectionStatus::Found(w) = &d.status else {
                    continue;
                };
                if !pair {
                    continue;
                }
                let adm = &model_list[d.admits].name;
                let rfu = &model_list[d.refutes].name;
                let t = LitmusTest {
                    name: format!("{}_not_{}", adm.to_lowercase(), rfu.to_lowercase()),
                    description: format!(
                        "{adm} admits, {rfu} refutes (found by smc separate in {})",
                        w.universe.label()
                    ),
                    history: w.history.clone(),
                    expectations: vec![(adm.clone(), true), (rfu.clone(), false)],
                };
                text.push_str(&emit_litmus_test(&t));
                text.push('\n');
            }
            if text.is_empty() {
                continue;
            }
            let path = format!(
                "{dir}/{}_vs_{}.litmus",
                model_list[a].name.to_lowercase(),
                model_list[b].name.to_lowercase()
            );
            let header = "# Machine-found separation witnesses; regenerate with\n\
                          #     smc separate --all --emit-dir litmus/separations\n\n";
            std::fs::write(&path, format!("{header}{text}"))
                .map_err(|e| format!("cannot write `{path}`: {e}"))?;
            println!("wrote {path}");
        }
    }
    Ok(())
}

/// Split `args` into positionals given the flags that consume a value
/// (the `positional` helper would swallow the word after a boolean flag).
fn positionals_with<'a>(args: &'a [String], value_flags: &[&str]) -> Vec<&'a str> {
    let mut pos: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if value_flags.contains(&a) {
            i += 2;
            continue;
        }
        if a.starts_with("--") {
            i += 1;
            continue;
        }
        pos.push(a);
        i += 1;
    }
    pos
}

/// Parse an optional numeric flag with a default.
fn num_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag_value(args, name) {
        None if args.iter().any(|a| a == name) => Err(format!("{name} requires a value")),
        None => Ok(default),
        Some(v) => v
            .parse::<T>()
            .map_err(|_| format!("{name}: `{v}` is not a valid number")),
    }
}

/// Per-stream monitoring state for `smc monitor`: one incremental
/// monitor plus the cursors tracking how much of its parsed input has
/// been applied. A plain replay uses one stream; a `@sid`-prefixed
/// multi-session trace (the `smc serve` wire format) gets one per
/// session id.
struct MonitorStream {
    /// Session id for `@sid` streams; `None` for the unprefixed stream.
    label: Option<String>,
    mon: smc_monitor::Monitor,
    scratch: smc_history::trace::Trace,
    fed: usize,
    declared_procs: usize,
    declared_locs: usize,
    applied_lifecycle: usize,
    prev: Vec<smc_monitor::TriVerdict>,
    warnings: usize,
}

impl MonitorStream {
    fn new(label: Option<String>, mon: smc_monitor::Monitor) -> MonitorStream {
        MonitorStream {
            label,
            prev: mon.verdicts().to_vec(),
            mon,
            scratch: smc_history::trace::Trace::new(),
            fed: 0,
            declared_procs: 0,
            declared_locs: 0,
            applied_lifecycle: 0,
            warnings: 0,
        }
    }

    /// Printed-line prefix identifying the session in a multi-session
    /// replay (empty for the default stream).
    fn tag(&self) -> String {
        match &self.label {
            Some(sid) => format!("[session {sid}] "),
            None => String::new(),
        }
    }

    /// Feed everything parsed but not yet applied: new names are
    /// declared, `join`/`retire` transitions apply at their recorded
    /// stream positions, and events go down in `batch`-sized chunks.
    fn pump(
        &mut self,
        models: &[ModelSpec],
        batch: usize,
        show_stats: bool,
        want_json: bool,
        json_lines: &mut Vec<String>,
    ) {
        use smc_history::trace::Lifecycle;
        for p in self.declared_procs..self.scratch.num_procs() {
            self.mon.declare_proc(&self.scratch.proc_names()[p]);
        }
        self.declared_procs = self.scratch.num_procs();
        for l in self.declared_locs..self.scratch.num_locs() {
            self.mon.declare_loc(&self.scratch.loc_names()[l]);
        }
        self.declared_locs = self.scratch.num_locs();
        loop {
            let next_lc = self
                .scratch
                .lifecycle()
                .get(self.applied_lifecycle)
                .copied();
            // Events run up to the next lifecycle transition (or the
            // end of the parsed stream), then the transition applies.
            let limit = next_lc.map_or(self.scratch.len(), |(pos, _)| pos as usize);
            if self.fed < limit {
                let take = (limit - self.fed).min(batch);
                let events: Vec<smc_monitor::BatchEvent<'_>> = self.scratch.events()
                    [self.fed..self.fed + take]
                    .iter()
                    .map(|ev| {
                        (
                            self.scratch.proc_name(ev.proc),
                            ev.kind,
                            self.scratch.loc_name(ev.loc),
                            ev.value.0,
                            ev.label,
                        )
                    })
                    .collect();
                let rep = self.mon.feed_batch(&events);
                let what = if take == 1 {
                    self.scratch.format_event(&self.scratch.events()[self.fed])
                } else {
                    format!("+{take} events")
                };
                self.fed += take;
                let tag = self.tag();
                if show_stats {
                    println!(
                        "{tag}#{} {}: frontier {}, created {}, expanded {}, reuse {}, rechecks {}, recheck-nodes {}, propagated {}",
                        rep.events,
                        what,
                        rep.frontier_states,
                        rep.created,
                        rep.expanded,
                        rep.reuse_hits,
                        rep.rechecks,
                        rep.recheck_nodes,
                        rep.propagated
                    );
                }
                for (i, now) in self.mon.verdicts().iter().enumerate() {
                    if *now != self.prev[i] {
                        println!(
                            "{tag}event {}: {} {} -> {}",
                            rep.events,
                            models[i].name,
                            self.prev[i].word(),
                            now.word()
                        );
                        self.prev[i] = *now;
                    }
                }
                if want_json {
                    let mut line = JsonObject::new();
                    if let Some(sid) = &self.label {
                        line = line.str("session", sid);
                    }
                    json_lines.push(
                        line.num("event", rep.events as u64)
                            .str("op", &what)
                            .num("frontier_states", rep.frontier_states)
                            .num("created", rep.created)
                            .num("expanded", rep.expanded)
                            .num("reuse_hits", rep.reuse_hits)
                            .num("rechecks", rep.rechecks)
                            .num("recheck_nodes", rep.recheck_nodes)
                            .num("propagated", rep.propagated)
                            .finish(),
                    );
                }
                continue;
            }
            let Some((_, l)) = next_lc else { break };
            let name = self.scratch.proc_name(l.proc()).to_owned();
            match l {
                Lifecycle::Join(_) => self.mon.join(&name),
                Lifecycle::Retire(_) => self.mon.retire(&name),
            }
            self.applied_lifecycle += 1;
        }
    }
}

/// `smc monitor`: stream a trace through the incremental admission
/// monitor, reporting per-prefix verdicts as events arrive.
fn cmd_monitor(args: &[String]) -> Result<ExitCode, String> {
    use smc_history::trace::{is_session_id, parse_trace_line, split_session_line};
    use smc_monitor::{Monitor, MonitorConfig, TriVerdict};
    use std::io::BufRead;

    const VALUE_FLAGS: [&str; 12] = [
        "--model",
        "--jobs",
        "--json",
        "--max-states",
        "--cutover",
        "--scheduler",
        "--engine",
        "--memo-file",
        "--batch",
        "--window",
        "--checkpoint-file",
        "--restore-from",
    ];
    let pos = positionals_with(args, &VALUE_FLAGS);
    let flags = CheckFlags::parse(args)?;
    let jobs = flags.jobs;
    let show_stats = args.iter().any(|a| a == "--stats");
    let json_path = flag_value(args, "--json");
    // Feed granularity: --batch N amortizes interning, table growth and
    // restart-model settling over N events per feed_batch call. Verdict
    // transitions and per-step stats then report at batch granularity;
    // final verdicts are identical to per-event feeding.
    let batch: usize = num_flag(args, "--batch", 1)?;
    if batch == 0 {
        return Err("monitor: --batch must be at least 1".into());
    }
    if args.iter().any(|a| a == "--corpus") {
        if !pos.is_empty() {
            return Err("monitor: --corpus takes no file argument".into());
        }
        return monitor_corpus(jobs, json_path);
    }

    let model_list: Vec<ModelSpec> = match flag_value(args, "--model") {
        // Lattice order keeps stronger models first, so one frontier
        // verdict propagates to as many weaker models as possible.
        None | Some("all") => models::lattice_models(),
        Some(name) => vec![models::by_name(name)
            .ok_or_else(|| format!("unknown model `{name}` (try `smc models`)"))?],
    };
    let mut cfg = MonitorConfig {
        jobs,
        ..MonitorConfig::default()
    };
    cfg.max_frontier_states = num_flag(args, "--max-states", cfg.max_frontier_states)?;
    // --window N seals the decided prefix every N events, bounding
    // frontier memory (0 = unwindowed, the default).
    let window: usize = num_flag(args, "--window", 0)?;
    cfg.window = (window > 0).then_some(window);
    cfg.check = flags.with_memo_if_requested(cfg.check);
    flags.configure(&mut cfg.check);
    memo_file_load(&cfg.check, flags.memo_file());
    // The memo cache is shared by Arc, so this clone saves the verdicts
    // the monitor's rechecks insert while it owns `cfg`.
    let memo_cfg = cfg.check.clone();
    let checkpoint_file = flag_value(args, "--checkpoint-file");
    let restore_from = flag_value(args, "--restore-from");
    // A restore must resume under the exact configuration the
    // checkpoint was cut with; `Monitor::restore` rejects mismatched
    // models, frontier caps and window sizes with a byte-offset error.
    // Limits not picked explicitly on this command line inherit the
    // checkpoint's, so `--restore-from` alone resumes any session.
    let base_mon = match restore_from {
        Some(p) => {
            let bytes = std::fs::read(p).map_err(|e| format!("cannot read `{p}`: {e}"))?;
            let (cap, win) = smc_monitor::ckpt::peek_limits(&bytes)
                .map_err(|e| format!("monitor: cannot restore `{p}`: {e}"))?;
            if !args.iter().any(|a| a == "--max-states") {
                cfg.max_frontier_states = cap;
            }
            if !args.iter().any(|a| a == "--window") {
                cfg.window = (win > 0).then_some(win);
            }
            let mon = Monitor::restore_bytes(&bytes, model_list.clone(), cfg.clone())
                .map_err(|e| format!("monitor: cannot restore `{p}`: {e}"))?;
            eprintln!("restored {} event(s) from {p}", mon.num_events());
            mon
        }
        None => Monitor::new(model_list.clone(), cfg.clone()),
    };

    let path = pos.first().copied().unwrap_or("-");
    let reader: Box<dyn BufRead> = if path == "-" {
        Box::new(std::io::BufReader::new(std::io::stdin()))
    } else {
        let f = std::fs::File::open(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        Box::new(std::io::BufReader::new(f))
    };

    // Events are parsed into a scratch trace line by line and fed to
    // the owning stream's monitor as they arrive; a malformed line
    // warns (with its byte offset into the stream, and its session id
    // in a `@sid` multi-session replay) and is skipped, keeping any
    // events parsed before the offending token.
    let want_json = json_path.is_some();
    let mut streams: Vec<MonitorStream> = vec![MonitorStream::new(None, base_mon)];
    let (mut line_no, mut offset) = (0usize, 0usize);
    let mut json_lines: Vec<String> = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read error on `{path}`: {e}"))?;
        line_no += 1;
        // Route `@sid` lines to their session's monitor; everything
        // else belongs to the default (unprefixed) stream.
        let (idx, content, content_off) = match split_session_line(&line) {
            Some((sid, rest)) if is_session_id(sid) => {
                if checkpoint_file.is_some() || restore_from.is_some() {
                    return Err(
                        "monitor: --checkpoint-file/--restore-from work on single-session \
                         streams (no `@sid` prefixes)"
                            .into(),
                    );
                }
                let idx = match streams.iter().position(|s| s.label.as_deref() == Some(sid)) {
                    Some(i) => i,
                    None => {
                        streams.push(MonitorStream::new(
                            Some(sid.to_owned()),
                            Monitor::new(model_list.clone(), cfg.clone()),
                        ));
                        streams.len() - 1
                    }
                };
                // `rest` slices `line`, so pointer distance is the
                // prefix width the reported byte offset must skip.
                let skip = rest.as_ptr() as usize - line.as_ptr() as usize;
                (idx, rest, offset + skip)
            }
            _ => (0, line.as_str(), offset),
        };
        let s = &mut streams[idx];
        if let Err(e) = parse_trace_line(&mut s.scratch, content, line_no, content_off) {
            s.warnings += 1;
            eprintln!("warning: {}skipping malformed trace input: {e}", s.tag());
            if want_json {
                let mut jl = JsonObject::new();
                if let Some(sid) = &s.label {
                    jl = jl.str("session", sid);
                }
                json_lines.push(
                    jl.num("skipped_line", line_no as u64)
                        .str("error", &e.to_string())
                        .finish(),
                );
            }
        }
        offset += line.len() + 1;
        s.pump(&model_list, batch, show_stats, want_json, &mut json_lines);
    }

    if let Some(p) = checkpoint_file {
        let s = &streams[0];
        smc_core::binfmt::write_file(std::path::Path::new(p), &s.mon.checkpoint_bytes())
            .map_err(|e| format!("cannot write `{p}`: {e}"))?;
        eprintln!("checkpointed {} event(s) to {p}", s.mon.num_events());
    }

    // In a multi-session replay an untouched default stream is just an
    // artifact of pre-creating it; don't report an empty block for it.
    let multi = streams.len() > 1;
    let report: Vec<&MonitorStream> = streams
        .iter()
        .filter(|s| !multi || s.label.is_some() || s.mon.num_events() > 0 || s.warnings > 0)
        .collect();
    let mut violated = 0usize;
    for s in &report {
        println!();
        if let Some(sid) = &s.label {
            println!("== session {sid} ==");
        }
        for (i, m) in model_list.iter().enumerate() {
            let v = s.mon.verdicts()[i];
            let note = match (v, s.mon.first_violation(i)) {
                (TriVerdict::Violated, Some(n)) => {
                    violated += 1;
                    format!("  (first violated at event {n})")
                }
                (_, Some(n)) => format!("  (transient violation at event {n}, healed)"),
                _ => String::new(),
            };
            println!("  {:<16} {}{note}", m.name, v.word());
            if want_json {
                let mut line = JsonObject::new();
                if let Some(sid) = &s.label {
                    line = line.str("session", sid);
                }
                let mut line = line.str("model", &m.name).str("verdict", v.word());
                if let Some(n) = s.mon.first_violation(i) {
                    line = line.num("first_violation", n as u64);
                }
                json_lines.push(line.finish());
            }
        }
        if let Some(w) = s.mon.windows() {
            println!(
                "  windows: {} sealed ({} frontier states retired)",
                w.windows_sealed, w.states_sealed
            );
            if show_stats {
                for (wi, rec) in w.records().iter().enumerate() {
                    let row: Vec<String> = model_list
                        .iter()
                        .zip(&rec.verdicts)
                        .map(|(m, v)| format!("{} {}", m.name, v.word()))
                        .collect();
                    println!(
                        "    window {} @ event {}: {}",
                        wi + 1,
                        rec.end,
                        row.join(", ")
                    );
                }
            }
            if want_json {
                for (wi, rec) in w.records().iter().enumerate() {
                    let mut line = JsonObject::new();
                    if let Some(sid) = &s.label {
                        line = line.str("session", sid);
                    }
                    let row: Vec<String> = model_list
                        .iter()
                        .zip(&rec.verdicts)
                        .map(|(m, v)| format!("{}:{}", m.name, v.word()))
                        .collect();
                    json_lines.push(
                        line.num("window", (wi + 1) as u64)
                            .num("end", rec.end as u64)
                            .str("verdicts", &row.join(" "))
                            .finish(),
                    );
                }
            }
        }
        // Minimized counterexamples only for models that end violated;
        // a healed transient is already noted above.
        for (i, _) in model_list.iter().enumerate() {
            if s.mon.verdicts()[i] != TriVerdict::Violated {
                continue;
            }
            if let Some(rep) = s.mon.violation_report(i) {
                println!(
                    "\n{}{} violated by the {}-event prefix; minimal counterexample:",
                    s.tag(),
                    rep.model,
                    rep.prefix_len
                );
                for l in rep.litmus.lines() {
                    println!("    {l}");
                }
            }
        }
    }

    let mut fed = 0usize;
    let mut warnings = 0usize;
    let mut totals = smc_monitor::MonitorTotals::default();
    for s in &report {
        fed += s.fed;
        warnings += s.warnings;
        let t = s.mon.totals();
        totals.created += t.created;
        totals.expanded += t.expanded;
        totals.reuse_hits += t.reuse_hits;
        totals.rebuild_work += t.rebuild_work;
        totals.rechecks += t.rechecks;
        totals.recheck_nodes += t.recheck_nodes;
        totals.propagated += t.propagated;
        totals.joins += t.joins;
        totals.retires += t.retires;
        totals.folds += t.folds;
        totals.windows_sealed += t.windows_sealed;
        totals.states_sealed += t.states_sealed;
    }
    println!(
        "\n{fed} event(s), {warnings} malformed line(s) skipped; frontier: {} created, {} expanded, {} reuse ({} rebuild); rechecks {} ({} nodes), propagated {}",
        totals.created,
        totals.expanded,
        totals.reuse_hits,
        totals.rebuild_work,
        totals.rechecks,
        totals.recheck_nodes,
        totals.propagated
    );
    if totals.joins + totals.retires + totals.folds > 0 {
        println!(
            "lifecycle: {} join(s), {} retire(s), {} fold(s)",
            totals.joins, totals.retires, totals.folds
        );
    }
    if let Some(path) = json_path {
        json_lines.push(
            JsonObject::new()
                .num("events", fed as u64)
                .num("warnings", warnings as u64)
                .num("skipped_lines", warnings as u64)
                .num("models", model_list.len() as u64)
                .num("sessions", report.len() as u64)
                .num("violated", violated as u64)
                .num("created", totals.created)
                .num("expanded", totals.expanded)
                .num("reuse_hits", totals.reuse_hits)
                .num("rebuild_work", totals.rebuild_work)
                .num("rechecks", totals.rechecks)
                .num("recheck_nodes", totals.recheck_nodes)
                .num("propagated", totals.propagated)
                .num("joins", totals.joins)
                .num("retires", totals.retires)
                .num("folds", totals.folds)
                .num("windows_sealed", totals.windows_sealed)
                .num("states_sealed", totals.states_sealed)
                .finish(),
        );
        let mut text = json_lines.join("\n");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    memo_file_save(&memo_cfg, flags.memo_file());
    Ok(if violated == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `smc monitor --corpus`: the monitor golden gate. Every embedded
/// litmus history is linearized to a trace, replayed event-by-event, and
/// the final per-model verdicts are diffed against the batch checker.
fn monitor_corpus(jobs: usize, json_path: Option<&str>) -> Result<ExitCode, String> {
    use smc_history::trace::Trace;
    use smc_monitor::{Monitor, MonitorConfig, TriVerdict};

    let suite = smc_programs::corpus::litmus_suite();
    let model_list = models::all_models();
    let cfg = CheckConfig::default().with_memo();
    let mut mismatches = 0usize;
    let mut rechecks = 0u64;
    let mut propagated = 0u64;
    let mut json_lines: Vec<String> = Vec::new();
    for t in &suite {
        let trace = Trace::from_history(&t.history);
        let mut mon = Monitor::new(
            model_list.clone(),
            MonitorConfig {
                jobs,
                ..MonitorConfig::default()
            },
        );
        mon.feed_trace(&trace);
        let totals = mon.totals();
        rechecks += totals.rechecks;
        propagated += totals.propagated;
        for (mi, m) in model_list.iter().enumerate() {
            let (batch, _) = smc_core::batch::check_parallel(&t.history, m, &cfg, jobs);
            let v = mon.verdicts()[mi];
            let mon_decided = match v {
                TriVerdict::Admitted => Some(true),
                TriVerdict::Violated => Some(false),
                TriVerdict::Unknown => None,
            };
            if mon_decided != batch.decided() {
                mismatches += 1;
                println!(
                    "MISMATCH {}: {} batch={}, monitor={}",
                    t.name,
                    m.name,
                    verdict_word(&batch),
                    v.word()
                );
            }
            if json_path.is_some() {
                json_lines.push(
                    JsonObject::new()
                        .str("test", &t.name)
                        .str("model", &m.name)
                        .str("verdict", v.word())
                        .finish(),
                );
            }
        }
    }
    println!(
        "monitor corpus: {} tests × {} models replayed, {} mismatch(es) vs batch; rechecks {}, propagated {}{}",
        suite.len(),
        model_list.len(),
        mismatches,
        rechecks,
        propagated,
        if jobs > 1 {
            format!(" [{jobs} jobs]")
        } else {
            String::new()
        }
    );
    if let Some(path) = json_path {
        json_lines.push(
            JsonObject::new()
                .num("tests", suite.len() as u64)
                .num("models", model_list.len() as u64)
                .num("mismatches", mismatches as u64)
                .num("rechecks", rechecks)
                .num("propagated", propagated)
                .finish(),
        );
        let mut text = json_lines.join("\n");
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    Ok(if mismatches == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// Resolve the models a server (or its offline verification twin)
/// monitors per session, in lattice order so frontier verdicts
/// propagate maximally.
fn serve_models(selector: Option<&str>) -> Result<Vec<ModelSpec>, String> {
    match selector {
        None | Some("all") => Ok(models::lattice_models()),
        Some(name) => models::by_name(name)
            .map(|m| vec![m])
            .ok_or_else(|| format!("unknown model `{name}` (try `smc models`)")),
    }
}

fn serve_config(args: &[String]) -> Result<smc_serve::ServeConfig, String> {
    let mut cfg = smc_serve::ServeConfig::default();
    if let Some(a) = flag_value(args, "--listen") {
        cfg.addr = a.to_owned();
    }
    cfg.workers = num_flag(args, "--workers", cfg.workers)?;
    cfg.max_sessions = num_flag(args, "--max-sessions", cfg.max_sessions)?;
    cfg.max_conns = num_flag(args, "--max-conns", cfg.max_conns)?;
    cfg.queue_cap = num_flag(args, "--queue", cfg.queue_cap)?;
    if cfg.queue_cap == 0 {
        return Err("serve: --queue must be at least 1".into());
    }
    cfg.models = serve_models(flag_value(args, "--model"))?;
    cfg.monitor.jobs = jobs_flag(args)?;
    cfg.monitor.max_frontier_states =
        num_flag(args, "--max-states", cfg.monitor.max_frontier_states)?;
    let window: usize = num_flag(args, "--window", 0)?;
    cfg.monitor.window = (window > 0).then_some(window);
    if let Some(d) = flag_value(args, "--evict-dir") {
        cfg.evict_dir = Some(std::path::PathBuf::from(d));
    }
    Ok(cfg)
}

/// `smc serve`: run the multi-session streaming admission server until
/// a client sends `SHUTDOWN`. With `--bench`, instead start an
/// ephemeral in-process server, drive it with the in-tree load
/// generator over loopback, verify every session's final verdict
/// against the offline monitor, and report sustained events/sec plus
/// query-latency percentiles (machine-readable via `--json`).
fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let cfg = serve_config(args)?;
    if args.iter().any(|a| a == "--bench") {
        return serve_bench(args, cfg);
    }
    let server = smc_serve::Server::start(cfg).map_err(|e| format!("serve: {e}"))?;
    println!("listening on {}", server.addr());
    // Scripts wait for this line before connecting; a redirected stdout
    // is block-buffered, so push it out now.
    std::io::Write::flush(&mut std::io::stdout()).ok();
    server.wait();
    println!("server stopped");
    Ok(ExitCode::SUCCESS)
}

fn loadgen_flags(args: &[String]) -> Result<(smc_serve::loadgen::LoadgenConfig, usize), String> {
    let sessions: usize = num_flag(args, "--sessions", 1024)?;
    if sessions == 0 {
        return Err("--sessions must be at least 1".into());
    }
    let cfg = smc_serve::loadgen::LoadgenConfig {
        addr: String::new(),
        conns: num_flag(args, "--conns", 8)?,
        query_every: num_flag(args, "--query-every", 32)?,
        shutdown: args.iter().any(|a| a == "--shutdown"),
    };
    if cfg.conns == 0 {
        return Err("--conns must be at least 1".into());
    }
    Ok((cfg, sessions))
}

fn loadgen_report_lines(
    report: &smc_serve::loadgen::LoadgenReport,
    verified: Option<usize>,
    memo: Option<MemoStats>,
) -> (String, String) {
    let human = format!(
        "{} session(s), {} event(s) in {:.2}s: {:.0} events/sec; {} quer{} p50 {}us p99 {}us; {} busy{}",
        report.sessions,
        report.events,
        report.elapsed_ns as f64 / 1e9,
        report.events_per_sec,
        report.queries,
        if report.queries == 1 { "y" } else { "ies" },
        report.query_p50_us,
        report.query_p99_us,
        report.busy,
        match verified {
            Some(0) => "; all verdicts match offline monitor".to_owned(),
            Some(n) => format!("; {n} VERDICT MISMATCH(ES)"),
            None => String::new(),
        }
    );
    let mut json = JsonObject::new()
        .str("bench", "serve")
        .num("sessions", report.sessions as u64)
        .num("events", report.events)
        .num("elapsed_ns", report.elapsed_ns)
        .num("events_per_sec", report.events_per_sec as u64)
        .num("queries", report.queries)
        .num("query_p50_us", report.query_p50_us)
        .num("query_p99_us", report.query_p99_us)
        .num("busy", report.busy);
    if let Some(n) = verified {
        json = json.bool("verified", n == 0).num("mismatches", n as u64);
    }
    // Cross-session memo traffic (the server's sessions share one
    // cache, so hits here are verdicts one session proved for another).
    if let Some(m) = memo {
        json = json.num("memo_hits", m.hits).num("memo_misses", m.misses);
    }
    (human, json.finish())
}

fn serve_bench(args: &[String], mut cfg: smc_serve::ServeConfig) -> Result<ExitCode, String> {
    let (mut lg, sessions) = loadgen_flags(args)?;
    let spec = GenSpec::parse(args)?.with_total_events(num_flag(args, "--events", 64)?);
    let work = gen_session_work(&spec, sessions)?;
    cfg.addr = "127.0.0.1:0".into();
    cfg.max_sessions = cfg.max_sessions.max(sessions);
    let model_list = cfg.models.clone();
    let mon_cfg = cfg.monitor.clone();
    // The memo cache is shared by Arc; hold a handle so the report can
    // include the cross-session hit counters after the server stops.
    let memo = cfg.monitor.check.memo.clone();
    let server = smc_serve::Server::start(cfg).map_err(|e| format!("serve: {e}"))?;
    lg.addr = server.addr().to_string();
    lg.shutdown = false;
    let report = smc_serve::loadgen::run(&lg, &work)?;
    // Snapshot before `verify`: the offline twin shares the cache Arc,
    // and its replay traffic must not count as server memo activity.
    let memo_stats = memo.as_ref().map(|m| m.stats());
    println!("{}", server.stats_line());
    let mismatches = smc_serve::loadgen::verify(&work, &report, &model_list, &mon_cfg);
    server.shutdown();
    for m in mismatches.iter().take(5) {
        eprintln!("mismatch: {m}");
    }
    let (human, json) = loadgen_report_lines(&report, Some(mismatches.len()), memo_stats);
    println!("{human}");
    if let Some(path) = flag_value(args, "--json") {
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(if mismatches.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `smc loadgen`: drive a *running* server (see `smc serve`) with
/// generated multi-session traffic and report throughput, latency
/// percentiles and (with `--verify`) a diff of every session's final
/// verdict against the offline monitor.
fn cmd_loadgen(args: &[String]) -> Result<ExitCode, String> {
    let addr = flag_value(args, "--addr").ok_or("loadgen: missing --addr HOST:PORT")?;
    let (mut lg, sessions) = loadgen_flags(args)?;
    lg.addr = addr.to_owned();
    let spec = GenSpec::parse(args)?.with_total_events(num_flag(args, "--events", 64)?);
    let work = gen_session_work(&spec, sessions)?;
    let report = smc_serve::loadgen::run(&lg, &work)?;
    let verified = if args.iter().any(|a| a == "--verify") {
        // The offline twin assumes the server monitors the same models
        // (its default set, or the matching --model) under the same
        // per-session frontier budget (the serve default, or the
        // matching --max-states).
        let model_list = serve_models(flag_value(args, "--model"))?;
        let mut mon_cfg = smc_serve::ServeConfig::default().monitor;
        mon_cfg.max_frontier_states = num_flag(args, "--max-states", mon_cfg.max_frontier_states)?;
        let mismatches = smc_serve::loadgen::verify(&work, &report, &model_list, &mon_cfg);
        for m in mismatches.iter().take(5) {
            eprintln!("mismatch: {m}");
        }
        Some(mismatches.len())
    } else {
        None
    };
    let (human, json) = loadgen_report_lines(&report, verified, None);
    println!("{human}");
    if let Some(path) = flag_value(args, "--json") {
        std::fs::write(path, format!("{json}\n"))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(if verified.unwrap_or(0) == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// `smc trace`: generate traces (`gen`) or linearize litmus files
/// (`from`).
fn cmd_trace(args: &[String]) -> Result<ExitCode, String> {
    const VALUE_FLAGS: [&str; 12] = [
        "--memory",
        "--procs",
        "--ops",
        "--locs",
        "--values",
        "--alias-values",
        "--seed",
        "--out",
        "--test",
        "--events",
        "--sessions",
        "--churn",
    ];
    let pos = positionals_with(args, &VALUE_FLAGS);
    match pos.first().copied() {
        Some("gen") => trace_gen(args),
        Some("from") => trace_from(args, pos.get(1).copied()),
        _ => Err("trace: expected `gen` or `from <file>`".into()),
    }
}

fn write_out(path: Option<&str>, text: &str) -> Result<ExitCode, String> {
    match path {
        Some(p) => {
            std::fs::write(p, text).map_err(|e| format!("cannot write `{p}`: {e}"))?;
            eprintln!("wrote {p}");
        }
        None => print!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

/// `smc trace from <file>`: linearize a litmus history in
/// processor-major program order.
fn trace_from(args: &[String], path: Option<&str>) -> Result<ExitCode, String> {
    use smc_history::trace::{emit_trace, Trace};
    let path = path.ok_or("trace from: missing <file>")?;
    let suite = load(path)?;
    let t = match flag_value(args, "--test") {
        Some(name) => suite
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| format!("trace from: no test named `{name}` in `{path}`"))?,
        None => {
            let first = suite
                .first()
                .ok_or("trace from: file contains no history")?;
            if suite.len() > 1 {
                eprintln!(
                    "note: `{path}` has {} tests; emitting `{}` (select with --test NAME)",
                    suite.len(),
                    first.name
                );
            }
            first
        }
    };
    let mut text = format!("# {}\n", t.name);
    text.push_str(&emit_trace(&Trace::from_history(&t.history)));
    write_out(flag_value(args, "--out"), &text)
}

/// Random-trace generation parameters, shared by `smc trace gen`, the
/// load generator and `smc serve --bench` so every consumer of "random
/// machine traffic" draws from one seeded well.
#[derive(Debug, Clone)]
struct GenSpec {
    memory: String,
    procs: usize,
    events: Option<usize>,
    ops: usize,
    locs: usize,
    values: i64,
    alias_values: Option<i64>,
    seed: u64,
}

impl GenSpec {
    fn parse(args: &[String]) -> Result<GenSpec, String> {
        let procs: usize = num_flag(args, "--procs", 3)?;
        let events: Option<usize> = match flag_value(args, "--events") {
            None if args.iter().any(|a| a == "--events") => {
                return Err("--events requires a value".into())
            }
            None => None,
            Some(v) => Some(
                v.parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--events: `{v}` is not a positive integer"))?,
            ),
        };
        let ops: usize = match events {
            // Cover the requested total even when it does not divide
            // evenly; the surplus is trimmed from the emitted stream.
            Some(n) => n.div_ceil(procs.max(1)),
            None => num_flag(args, "--ops", 4)?,
        };
        let locs: usize = num_flag(args, "--locs", 2)?;
        let values: i64 = num_flag(args, "--values", 2)?;
        // Aliasing-heavy mode: write values come from a fresh counter
        // folded into a K-letter alphabet, so the emitted trace has the
        // *structure* of a fresh-value execution but every read ends up
        // with many same-value reads-from candidates — the adversarial
        // regime for checkers. Mutually exclusive with --values (it
        // replaces the value pool, it does not sample from one).
        let alias_values: Option<i64> = match flag_value(args, "--alias-values") {
            None if args.iter().any(|a| a == "--alias-values") => {
                return Err("--alias-values requires a value".into())
            }
            None => None,
            Some(v) => Some(
                v.parse::<i64>()
                    .ok()
                    .filter(|&k| k >= 1)
                    .ok_or_else(|| format!("--alias-values: `{v}` is not a positive integer"))?,
            ),
        };
        if alias_values.is_some() && flag_value(args, "--values").is_some() {
            return Err("trace gen: --alias-values and --values are mutually exclusive".into());
        }
        let seed: u64 = num_flag(args, "--seed", 0)?;
        if procs == 0 || locs == 0 || values < 1 {
            return Err("trace gen: --procs/--locs/--values must be at least 1".into());
        }
        Ok(GenSpec {
            memory: flag_value(args, "--memory").unwrap_or("tso").to_owned(),
            procs,
            events,
            ops,
            locs,
            values,
            alias_values,
            seed,
        })
    }

    /// Resize to exactly `n` total events (re-deriving the per-processor
    /// op count the program is sized with).
    fn with_total_events(mut self, n: usize) -> GenSpec {
        self.events = Some(n);
        self.ops = n.div_ceil(self.procs.max(1));
        self
    }

    /// The provenance comment line `smc trace gen` writes above a
    /// generated stream.
    fn comment(&self) -> String {
        let sizing = match self.events {
            Some(n) => format!("--events {n}"),
            None => format!("--ops {}", self.ops),
        };
        let valuing = match self.alias_values {
            Some(k) => format!("--alias-values {k}"),
            None => format!("--values {}", self.values),
        };
        format!(
            "# smc trace gen --memory {} --procs {} {sizing} --locs {} {valuing} --seed {}\n",
            self.memory, self.procs, self.locs, self.seed
        )
    }

    /// Run the random program on the operational machine under a seeded
    /// random scheduler; returns the (possibly cut) arrival-order trace
    /// and whether the run drained before the step limit.
    fn generate(&self) -> Result<(smc_history::trace::Trace, bool), String> {
        use smc_history::trace::Trace;
        use smc_prng::SmallRng;

        let (procs, ops, locs, seed) = (self.procs, self.ops, self.locs, self.seed);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut fresh = 0i64;
        let mut threads: Vec<Vec<Access>> = Vec::with_capacity(procs);
        for _ in 0..procs {
            let mut thread = Vec::with_capacity(ops);
            for _ in 0..ops {
                let loc = rng.gen_range(0..locs) as u32;
                if rng.gen_range(0..2usize) == 0 {
                    let v = match self.alias_values {
                        Some(k) => {
                            fresh += 1;
                            (fresh - 1) % k + 1
                        }
                        None => rng.gen_range(0..self.values as usize) as i64 + 1,
                    };
                    thread.push(Access::write(loc, v));
                } else {
                    thread.push(Access::read(loc));
                }
            }
            threads.push(thread);
        }
        let script = OpScript::new(threads, locs);

        fn go<M: MemorySystem>(mem: M, script: &OpScript, seed: u64) -> smc_sim::sched::RunOutcome {
            run_random(mem, script.clone(), seed, 200_000)
        }
        let out = match self.memory.as_str() {
            "sc" => go(ScMem::new(procs, locs), &script, seed),
            "tso" => go(TsoMem::new(procs, locs), &script, seed),
            "tso-fwd" => go(TsoMem::with_forwarding(procs, locs), &script, seed),
            "pram" => go(PramMem::new(procs, locs), &script, seed),
            "causal" => go(CausalMem::new(procs, locs), &script, seed),
            "pc" => go(PcMem::new(procs, locs), &script, seed),
            "coherent" => go(CoherentMem::new(procs, locs), &script, seed),
            "rcsc" => go(RcMem::new(SyncMode::Sc, procs, locs), &script, seed),
            "rcpc" => go(RcMem::new(SyncMode::Pc, procs, locs), &script, seed),
            "wo" => go(WoMem::new(procs, locs), &script, seed),
            "hybrid" => go(HybridMem::new(procs, locs), &script, seed),
            other => return Err(format!("unknown memory `{other}`")),
        };
        let trace = match self.events {
            Some(n) if out.trace.len() > n => {
                // One linear pass over the first n events; re-emitting or
                // re-running per prefix length would be quadratic in n.
                let mut cut = Trace::new();
                for p in out.trace.proc_names() {
                    cut.add_proc(p);
                }
                for l in out.trace.loc_names() {
                    cut.add_loc(l);
                }
                for ev in &out.trace.events()[..n] {
                    cut.push(*ev);
                }
                cut
            }
            Some(n) if out.trace.len() < n => {
                return Err(format!(
                    "trace gen: machine produced only {} of {n} requested events (step limit)",
                    out.trace.len()
                ));
            }
            _ => out.trace,
        };
        Ok((trace, out.completed))
    }
}

/// `--churn K`: K+1 processor generations over one stream. Each
/// generation is an independent machine run (seed `S+g`) whose
/// processors are renamed `g<g>p<i>`, introduced by `join` lines and —
/// except the last generation — removed by `retire` lines before the
/// next generation starts. Locations are shared across generations, so
/// a retired generation's final writes stay visible: the regime the
/// monitor's churn folding (summarize-and-forget) is built for. No
/// `procs` header is emitted on purpose — processors must enter via
/// `join` for the monitor's frontier width to stay O(active).
///
/// Each machine runs from zero-initialized memory, but generation `g+1`
/// inherits generation `g`'s final memory in the emitted stream. Written
/// values are always >= 1, so a read of 0 is exactly a read of the
/// machine's initial memory — those are rewritten to the inherited
/// contents (last write per location in stream order, which is what the
/// monitor's fold commits). Without the rewrite the stream contradicts
/// the generating model the moment a new generation reads a location an
/// old one wrote.
fn gen_churn_text(spec: &GenSpec, churn: usize) -> Result<String, String> {
    let mut out = String::new();
    let mut mem: std::collections::HashMap<String, i64> = std::collections::HashMap::new();
    for g in 0..=churn {
        let mut s = spec.clone();
        s.seed = spec.seed.wrapping_add(g as u64);
        let (t, _) = s.generate()?;
        if g == 0 {
            out.push_str(&format!("locs {}\n", t.loc_names().join(" ")));
        }
        for p in t.proc_names() {
            out.push_str(&format!("join g{g}{p}\n"));
        }
        // Initial-memory reads are rewritten against the snapshot at the
        // generation boundary: a stale read of initial memory later in
        // the generation must still see the *inherited* value, not a
        // write from its own generation.
        let inherit = mem.clone();
        for ev in t.events() {
            let mut e = *ev;
            let loc = t.loc_name(e.loc);
            if e.kind.is_write() {
                mem.insert(loc.to_string(), e.value.0);
            } else if e.value.0 == 0 {
                if let Some(&v) = inherit.get(loc) {
                    e.value.0 = v;
                }
            }
            // `format_event` leads with the processor name, so the
            // generation prefix renames it in place.
            out.push_str(&format!("g{g}{}\n", t.format_event(&e)));
        }
        if g < churn {
            for p in t.proc_names() {
                out.push_str(&format!("retire g{g}{p}\n"));
            }
        }
    }
    Ok(out)
}

/// `sessions` independent random traces, one per session id `s0..`,
/// derived from `spec` with per-session seeds `seed + i`. Shared by
/// `smc trace gen --sessions`, `smc loadgen` and `smc serve --bench`.
fn gen_session_work(
    spec: &GenSpec,
    sessions: usize,
) -> Result<Vec<(String, smc_history::trace::Trace)>, String> {
    (0..sessions)
        .map(|i| {
            let mut s = spec.clone();
            s.seed = spec.seed.wrapping_add(i as u64);
            let (t, _) = s.generate()?;
            Ok((format!("s{i}"), t))
        })
        .collect()
}

/// `smc trace gen`: run a random program shape on an operational machine
/// under a seeded random scheduler and emit the arrival-order stream.
/// `--events N` fixes the *total* event count instead of `--ops`
/// (per-processor): the program is sized to cover N and the emitted
/// stream is cut to exactly N events, so generating a 1000-op trace
/// costs one run and one emission. `--sessions N` instead emits N
/// independent streams (per-session seeds `S..S+N-1`) interleaved
/// line-by-line under a seeded shuffle, each line `@sid`-prefixed — the
/// multi-session wire format `smc serve` ingests and
/// `parse_multi_trace` demultiplexes.
fn trace_gen(args: &[String]) -> Result<ExitCode, String> {
    use smc_history::trace::{emit_trace, session_line};
    use smc_prng::SmallRng;

    let spec = GenSpec::parse(args)?;
    let sessions: usize = num_flag(args, "--sessions", 0)?;
    let churn: usize = num_flag(args, "--churn", 0)?;
    if churn > 0 && sessions > 0 {
        return Err("trace gen: --churn and --sessions are mutually exclusive".into());
    }
    if churn > 0 {
        let mut text = spec.comment().replacen(
            "# smc trace gen",
            &format!("# smc trace gen --churn {churn}"),
            1,
        );
        text.push_str(&gen_churn_text(&spec, churn)?);
        return write_out(flag_value(args, "--out"), &text);
    }
    if sessions == 0 {
        let (trace, completed) = spec.generate()?;
        let mut text = spec.comment();
        if !completed {
            text.push_str("# note: run hit the step limit before draining\n");
        }
        text.push_str(&emit_trace(&trace));
        return write_out(flag_value(args, "--out"), &text);
    }

    let work = gen_session_work(&spec, sessions)?;
    let mut text = format!("# smc trace gen --sessions {sessions}\n");
    text.push_str(
        &spec
            .comment()
            .replacen("# smc trace gen", "# per-session base:", 1),
    );
    let lines: Vec<Vec<String>> = work
        .iter()
        .map(|(sid, t)| {
            emit_trace(t)
                .lines()
                .map(|l| session_line(sid, l))
                .collect()
        })
        .collect();
    // Seeded interleave: each step hands the next line of a randomly
    // chosen still-live session, so the emitted stream exercises
    // demultiplexing the way genuinely concurrent clients would.
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x5e55_1011);
    let mut cursor = vec![0usize; lines.len()];
    let mut live: Vec<usize> = (0..lines.len()).collect();
    while !live.is_empty() {
        let k = rng.gen_range(0..live.len());
        let s = live[k];
        text.push_str(&lines[s][cursor[s]]);
        text.push('\n');
        cursor[s] += 1;
        if cursor[s] == lines[s].len() {
            live.swap_remove(k);
        }
    }
    write_out(flag_value(args, "--out"), &text)
}

fn cmd_models() -> Result<ExitCode, String> {
    println!("Declarative models (for `smc check --model ...`):");
    for m in models::all_models() {
        println!(
            "  {:<16} δ={:?}, mutual: [{}{}{}{}], order: {:?}{}{}{}",
            m.name,
            m.delta,
            if m.identical_views {
                "identical-views "
            } else {
                ""
            },
            if m.global_write_order {
                "store-order "
            } else {
                ""
            },
            if m.coherence { "coherence " } else { "" },
            m.labeled
                .map(|l| format!("labeled:{l:?} "))
                .unwrap_or_default(),
            m.global_order,
            if m.rc_bracketing {
                " +rc-bracketing"
            } else {
                ""
            },
            if m.fence_bracketing { " +fences" } else { "" },
            match m.owner_order {
                smc_core::spec::OwnerOrder::None => "",
                _ => " +owner-order",
            },
        );
    }
    println!("\nOperational machines (for `smc explore --memory ...`):");
    println!("  sc tso tso-fwd pram causal pc coherent rcsc rcpc wo hybrid");
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["x.litmus", "--model", "TSO", "--runs", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--model"), Some("TSO"));
        assert_eq!(flag_value(&args, "--runs"), Some("5"));
        assert_eq!(flag_value(&args, "--nope"), None);
        assert_eq!(positional(&args), vec!["x.litmus"]);
    }

    #[test]
    fn engine_flag_parsing() {
        let to_args = |s: &[&str]| -> Vec<String> { s.iter().map(|x| x.to_string()).collect() };
        assert_eq!(engine_flag(&to_args(&[])).unwrap(), EngineKind::Auto);
        assert_eq!(
            engine_flag(&to_args(&["--engine", "saturate"])).unwrap(),
            EngineKind::Saturate
        );
        assert_eq!(
            engine_flag(&to_args(&["--engine", "exhaustive"])).unwrap(),
            EngineKind::Exhaustive
        );
        assert_eq!(
            engine_flag(&to_args(&["--engine", "auto"])).unwrap(),
            EngineKind::Auto
        );
        assert!(engine_flag(&to_args(&["--engine"])).is_err());
        assert!(engine_flag(&to_args(&["--engine", "warp"])).is_err());
    }

    #[test]
    fn check_flags_parse_and_configure() {
        let args: Vec<String> = [
            "--jobs",
            "3",
            "--cutover",
            "7",
            "--engine",
            "saturate",
            "--scheduler",
            "static",
            "--memo-file",
            "m.bin",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let flags = CheckFlags::parse(&args).unwrap();
        assert_eq!(flags.jobs, 3);
        assert_eq!(flags.memo_file(), Some("m.bin"));
        let mut cfg = CheckConfig::default();
        flags.configure(&mut cfg);
        assert_eq!(cfg.parallel_cutover, 7);
        assert_eq!(cfg.engine, EngineKind::Saturate);
        assert_eq!(cfg.scheduler, SchedulerKind::StaticPrefix);
        // Defaults when no flags are given.
        let flags = CheckFlags::parse(&[]).unwrap();
        assert_eq!(flags.jobs, 1);
        assert_eq!(flags.engine, EngineKind::Auto);
        assert!(flags.memo_file().is_none());
    }

    #[test]
    fn resolve_model_selectors() {
        assert!(resolve_models(None).unwrap().len() > 5);
        assert_eq!(resolve_models(Some("tso")).unwrap()[0].name, "TSO");
        assert!(resolve_models(Some("bogus")).is_err());
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        assert!(run(&["frobnicate".to_string()]).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn models_subcommand_succeeds() {
        assert!(cmd_models().is_ok());
    }

    #[test]
    fn script_conversion_preserves_shape() {
        let h = parse_history("p: w(x)1 rl(y)0\nq: wl(y)2").unwrap();
        let s = to_script(&h);
        assert_eq!(s.total_ops(), 3);
        assert_eq!(s.num_locs(), 2);
    }
}

//! Minimal hand-rolled JSON emission for machine-readable reports.
//!
//! The workspace deliberately has no serialization dependency; the `smc
//! corpus --json` / `--exhaustive` reports only need flat objects with
//! string/number/boolean fields, which this builder covers. Objects are
//! rendered on one line each so reports stay greppable and diffable
//! between runs.

/// Escape a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A single-line JSON object under construction.
#[derive(Default)]
pub struct JsonObject {
    parts: Vec<String>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.parts
            .push(format!("\"{}\":\"{}\"", escape(key), escape(value)));
        self
    }

    /// Add an unsigned integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.parts.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Add a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.parts.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Add a pre-rendered JSON value (nested object or array) verbatim.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.parts.push(format!("\"{}\":{}", escape(key), value));
        self
    }

    /// Render the object on one line.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn builds_flat_objects() {
        let s = JsonObject::new()
            .str("name", "x\"y")
            .num("n", 3)
            .bool("ok", true)
            .raw("inner", "{\"a\":1}")
            .finish();
        assert_eq!(
            s,
            "{\"name\":\"x\\\"y\",\"n\":3,\"ok\":true,\"inner\":{\"a\":1}}"
        );
    }
}

//! `smc` — command-line front end to the characterization framework.
//!
//! ```text
//! smc check <file> [--model NAME]     check a litmus history/suite
//! smc matrix <file>                   classification matrix for a suite
//! smc explore <file> --memory NAME    enumerate an operational machine
//! smc bakery [--memory NAME] [--n N] [--runs R]
//! smc separate <model-a> <model-b>    search for a separating witness
//! smc separate --all                  separate every unlabeled model pair
//! smc models                          list the available models
//! ```
//!
//! Files use the litmus notation of `smc-history` (`p: w(x)1 r(y)0`; see
//! the README). Exit status is nonzero when a suite expectation fails or
//! a requested verdict is `Disallowed`.

use std::process::ExitCode;

mod commands;
mod json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::from(2)
        }
    }
}

//! A line-oriented *trace* format: an append-only stream of
//! `(processor, operation)` events in arrival order.
//!
//! Where the litmus notation (one line per processor) describes a
//! complete history, a trace records the order in which operations
//! arrived at the monitor — one event per line:
//!
//! ```text
//! # header lines fix the processor and location tables
//! procs p q
//! locs x y
//! p w(x)1
//! q r(x)1
//! q w(y)1
//! ```
//!
//! Operation tokens use the litmus mnemonics (`w`/`r` ordinary,
//! `wl`/`rl` or `W`/`R` labeled). `#` starts a comment that runs to end
//! of line. The words `procs`, `locs`, `join` and `retire` are reserved
//! and cannot name a processor. The `procs`/`locs` headers are optional
//! — names are also interned on first use — but [`emit_trace`] always
//! writes them so that empty processors and location numbering survive
//! a round trip: `parse_trace(emit_trace(t))` reproduces `t` exactly,
//! and `Trace::from_history(h).history() == h` for every parser- or
//! builder-produced history.
//!
//! Long-lived streams additionally carry processor *lifecycle* lines —
//! `join p` / `retire p` — recording membership churn at a position in
//! the event stream. Lifecycle lines do not affect the [`Trace::history`]
//! projection (a history has a fixed processor table); the streaming
//! monitor consumes them to fold retired processors and reuse their
//! slots.

use crate::builder::HistoryBuilder;
use crate::history::History;
use crate::litmus::{is_ident, is_loc_name, parse_op_token};
use crate::op::{Label, Location, OpKind, ProcId, Value};
use std::fmt;

/// A parse failure, carrying a 1-based line number and the byte offset
/// of the offending token within the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line on which the error was detected.
    pub line: usize,
    /// Byte offset (0-based, into the full input) of the offending token.
    pub offset: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {} (byte {}): {}",
            self.line, self.offset, self.message
        )
    }
}

impl std::error::Error for TraceError {}

/// One event of a trace: a processor performing a single operation.
///
/// The event does not carry a global operation id — its position in the
/// owning [`Trace`] is the arrival order, and `(proc, arrival index
/// among this proc's events)` gives its program-order position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// The issuing processor.
    pub proc: ProcId,
    /// Read or write.
    pub kind: OpKind,
    /// The accessed location.
    pub loc: Location,
    /// The value written (for writes) or reported (for reads).
    pub value: Value,
    /// Ordinary or labeled (synchronization) operation.
    pub label: Label,
}

/// A processor lifecycle transition (`join p` / `retire p`), recorded
/// at a position in the owning trace's event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lifecycle {
    /// The processor enters (or re-enters) the active set.
    Join(ProcId),
    /// The processor leaves the active set; no further events of its
    /// are expected until a matching `join`.
    Retire(ProcId),
}

impl Lifecycle {
    /// The processor undergoing the transition.
    pub fn proc(&self) -> ProcId {
        match *self {
            Lifecycle::Join(p) | Lifecycle::Retire(p) => p,
        }
    }
}

/// An append-only stream of operation events in arrival order, with
/// interned processor and location tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    proc_names: Vec<String>,
    loc_names: Vec<String>,
    events: Vec<TraceEvent>,
    /// Lifecycle transitions, each tagged with the number of events
    /// that preceded it (so `(k, l)` happened before `events[k]`).
    lifecycle: Vec<(u32, Lifecycle)>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern (or look up) a processor by name.
    pub fn add_proc(&mut self, name: &str) -> ProcId {
        if let Some(i) = self.proc_names.iter().position(|n| n == name) {
            return ProcId(i as u32);
        }
        self.proc_names.push(name.to_owned());
        ProcId((self.proc_names.len() - 1) as u32)
    }

    /// Intern (or look up) a location by name.
    pub fn add_loc(&mut self, name: &str) -> Location {
        if let Some(i) = self.loc_names.iter().position(|n| n == name) {
            return Location(i as u32);
        }
        self.loc_names.push(name.to_owned());
        Location((self.loc_names.len() - 1) as u32)
    }

    /// Append an event. `proc` and `loc` must have been interned.
    pub fn push(&mut self, event: TraceEvent) {
        assert!(event.proc.index() < self.proc_names.len(), "unknown proc");
        assert!(event.loc.index() < self.loc_names.len(), "unknown loc");
        self.events.push(event);
    }

    /// Append an event given by names, interning as needed.
    pub fn push_named(&mut self, proc: &str, kind: OpKind, loc: &str, value: i64, label: Label) {
        let proc = self.add_proc(proc);
        let loc = self.add_loc(loc);
        self.events.push(TraceEvent {
            proc,
            kind,
            loc,
            value: Value(value),
            label,
        });
    }

    /// Record a lifecycle transition at the current stream position.
    /// The processor must have been interned.
    pub fn push_lifecycle(&mut self, l: Lifecycle) {
        assert!(l.proc().index() < self.proc_names.len(), "unknown proc");
        self.lifecycle.push((self.events.len() as u32, l));
    }

    /// The lifecycle transitions, each paired with the number of events
    /// preceding it, in recorded order.
    pub fn lifecycle(&self) -> &[(u32, Lifecycle)] {
        &self.lifecycle
    }

    /// The events, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of interned processors.
    pub fn num_procs(&self) -> usize {
        self.proc_names.len()
    }

    /// Number of interned locations.
    pub fn num_locs(&self) -> usize {
        self.loc_names.len()
    }

    /// The interned processor names, in id order.
    pub fn proc_names(&self) -> &[String] {
        &self.proc_names
    }

    /// The interned location names, in id order.
    pub fn loc_names(&self) -> &[String] {
        &self.loc_names
    }

    /// The source name of processor `p`.
    pub fn proc_name(&self, p: ProcId) -> &str {
        &self.proc_names[p.index()]
    }

    /// The source name of location `l`.
    pub fn loc_name(&self, l: Location) -> &str {
        &self.loc_names[l.index()]
    }

    /// Serialize one event as it appears on a trace line (no newline).
    pub fn format_event(&self, e: &TraceEvent) -> String {
        let mnemonic = match (e.kind, e.label) {
            (OpKind::Write, Label::Ordinary) => "w",
            (OpKind::Read, Label::Ordinary) => "r",
            (OpKind::Write, Label::Labeled) => "wl",
            (OpKind::Read, Label::Labeled) => "rl",
        };
        format!(
            "{} {}({}){}",
            self.proc_name(e.proc),
            mnemonic,
            self.loc_name(e.loc),
            e.value
        )
    }

    /// Linearize a history into a trace in processor-major program order
    /// (`P0`'s operations first, then `P1`'s, ...). The processor and
    /// location tables are copied verbatim, so empty processors survive.
    pub fn from_history(h: &History) -> Trace {
        let mut t = Trace {
            proc_names: (0..h.num_procs())
                .map(|p| h.proc_name(ProcId(p as u32)).to_owned())
                .collect(),
            loc_names: (0..h.num_locs())
                .map(|l| h.loc_name(Location(l as u32)).to_owned())
                .collect(),
            events: Vec::with_capacity(h.num_ops()),
            lifecycle: Vec::new(),
        };
        for op in h.ops() {
            t.events.push(TraceEvent {
                proc: op.proc,
                kind: op.kind,
                loc: op.loc,
                value: op.value,
                label: op.label,
            });
        }
        t
    }

    /// The complete history of the trace: every processor's events in
    /// arrival order form its program order. Processor and location
    /// tables are preserved exactly, including empty processors.
    pub fn history(&self) -> History {
        self.history_of_prefix(self.events.len())
    }

    /// The history of the first `n` events (same tables as the full
    /// trace). Panics if `n > self.len()`.
    pub fn history_of_prefix(&self, n: usize) -> History {
        let mut b = HistoryBuilder::new();
        for name in &self.proc_names {
            b.add_proc(name);
        }
        for name in &self.loc_names {
            b.add_loc(name);
        }
        for e in &self.events[..n] {
            b.push(
                &self.proc_names[e.proc.index()],
                e.kind,
                &self.loc_names[e.loc.index()],
                e.value,
                e.label,
            );
        }
        b.build()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.proc_names.is_empty() {
            writeln!(f, "procs {}", self.proc_names.join(" "))?;
        }
        if !self.loc_names.is_empty() {
            writeln!(f, "locs {}", self.loc_names.join(" "))?;
        }
        // Lifecycle lines interleave at their recorded positions: an
        // entry at position `k` prints before `events[k]`.
        let mut lc = self.lifecycle.iter().peekable();
        let mut write_lc = |f: &mut fmt::Formatter<'_>, upto: usize| -> fmt::Result {
            while let Some(&&(pos, l)) = lc.peek() {
                if pos as usize > upto {
                    break;
                }
                let (verb, p) = match l {
                    Lifecycle::Join(p) => ("join", p),
                    Lifecycle::Retire(p) => ("retire", p),
                };
                writeln!(f, "{verb} {}", self.proc_name(p))?;
                lc.next();
            }
            Ok(())
        };
        for (i, e) in self.events.iter().enumerate() {
            write_lc(f, i)?;
            writeln!(f, "{}", self.format_event(e))?;
        }
        write_lc(f, self.events.len())?;
        Ok(())
    }
}

/// Render a trace in the line format this module parses. The text is the
/// canonical serialization: `parse_trace(emit_trace(t))` reproduces `t`
/// exactly, provided every name round-trips through the parser — which
/// holds for all parser- or builder-produced traces and histories.
pub fn emit_trace(t: &Trace) -> String {
    t.to_string()
}

/// Words with structural meaning at line start; none may name a
/// processor (an event for it could not be expressed).
const RESERVED: [&str; 4] = ["procs", "locs", "join", "retire"];

fn err<T>(line: usize, offset: usize, message: impl Into<String>) -> Result<T, TraceError> {
    Err(TraceError {
        line,
        offset,
        message: message.into(),
    })
}

/// Byte offset of the slice `part` within `whole` (both must come from
/// the same allocation, which holds for everything the parser slices).
fn offset_in(whole: &str, part: &str) -> usize {
    part.as_ptr() as usize - whole.as_ptr() as usize
}

/// Parse one raw input line into `t`, returning how many events it
/// appended (0 for blank lines, comments, and headers). `line_no` is the
/// 1-based line number and `base_offset` the byte offset of the line
/// start within the overall input; both are used only to position
/// errors, so a streaming caller reading line-by-line (e.g. from stdin)
/// can report offsets into the stream it has consumed so far.
///
/// On an error, events parsed from tokens *before* the offending one
/// remain appended — a warn-and-skip caller keeps the valid prefix of
/// the line (canonical emitted traces have one event per line, so the
/// distinction only arises on hand-written input).
pub fn parse_trace_line(
    t: &mut Trace,
    raw: &str,
    line_no: usize,
    base_offset: usize,
) -> Result<usize, TraceError> {
    let line = match raw.find('#') {
        Some(c) => &raw[..c],
        None => raw,
    };
    let line = line.trim();
    if line.is_empty() {
        return Ok(0);
    }
    let at = |part: &str| base_offset + offset_in(raw, part);
    let (head, rest) = match line.split_once(char::is_whitespace) {
        Some((h, r)) => (h, r.trim_start()),
        None => (line, ""),
    };
    match head {
        "procs" => {
            for name in rest.split_whitespace() {
                if !is_ident(name) || RESERVED.contains(&name) {
                    return err(
                        line_no,
                        at(name),
                        format!("invalid processor name `{name}`"),
                    );
                }
                t.add_proc(name);
            }
            Ok(0)
        }
        "join" | "retire" => {
            let name = rest.trim();
            if name.is_empty() {
                return err(
                    line_no,
                    at(head),
                    format!("expected a processor name after `{head}`"),
                );
            }
            if !is_ident(name) || RESERVED.contains(&name) {
                return err(
                    line_no,
                    at(name),
                    format!("invalid processor name `{name}`"),
                );
            }
            let p = t.add_proc(name);
            t.push_lifecycle(if head == "join" {
                Lifecycle::Join(p)
            } else {
                Lifecycle::Retire(p)
            });
            Ok(0)
        }
        "locs" => {
            for name in rest.split_whitespace() {
                if !is_loc_name(name) {
                    return err(line_no, at(name), format!("invalid location name `{name}`"));
                }
                t.add_loc(name);
            }
            Ok(0)
        }
        proc => {
            if !is_ident(proc) {
                return err(
                    line_no,
                    at(proc),
                    format!("invalid processor name `{proc}`"),
                );
            }
            if rest.is_empty() {
                return err(
                    line_no,
                    at(proc),
                    format!("expected an operation after processor `{proc}`"),
                );
            }
            let mut ops = rest;
            let mut appended = 0;
            while !ops.is_empty() {
                let tok = parse_op_token(ops).map_err(|message| TraceError {
                    line: line_no,
                    offset: at(ops),
                    message,
                })?;
                t.push_named(proc, tok.kind, tok.loc, tok.value, tok.label);
                appended += 1;
                ops = tok.rest.trim_start();
            }
            Ok(appended)
        }
    }
}

/// Parse a trace from its line format. Errors carry both the 1-based
/// line number and the byte offset of the offending token.
pub fn parse_trace(text: &str) -> Result<Trace, TraceError> {
    let mut t = Trace::new();
    for (i, raw) in text.lines().enumerate() {
        parse_trace_line(&mut t, raw, i + 1, offset_in(text, raw))?;
    }
    Ok(t)
}

/// Split a *session-prefixed* trace line: `@<sid> <rest>` names the
/// session the rest of the line belongs to. Returns `None` when the
/// line carries no prefix (a plain trace line, comment, or blank). The
/// prefix marker must be the first non-whitespace character; the
/// session id runs to the next whitespace and may be empty only in a
/// malformed line, which the caller rejects via [`parse_multi_trace`].
///
/// This is the framing shared by `smc trace gen --sessions`, the
/// multi-session admission server's `@sid` event shorthand, and the
/// loopback load generator: one interleaved stream, one session per
/// monitored history.
pub fn split_session_line(raw: &str) -> Option<(&str, &str)> {
    let line = raw.trim_start();
    let tagged = line.strip_prefix('@')?;
    match tagged.split_once(char::is_whitespace) {
        Some((sid, rest)) => Some((sid, rest)),
        // Keep the empty rest inside `raw`'s allocation so callers can
        // still compute byte offsets against the original line.
        None => Some((tagged, &tagged[tagged.len()..])),
    }
}

/// Render a trace line under a session prefix (the inverse of
/// [`split_session_line`]).
pub fn session_line(sid: &str, line: &str) -> String {
    format!("@{sid} {line}")
}

/// `true` if `sid` is usable as a session id on the wire: nonempty,
/// at most 64 bytes, no whitespace or control characters, and not
/// starting with the prefix marker itself.
pub fn is_session_id(sid: &str) -> bool {
    !sid.is_empty()
        && sid.len() <= 64
        && !sid.starts_with('@')
        && sid.chars().all(|c| !c.is_whitespace() && !c.is_control())
}

/// Demultiplex a session-prefixed stream into one trace per session,
/// in order of first appearance. Unprefixed lines must be blank or
/// comments — a bare event line in a multi-session stream is ambiguous
/// and rejected. Within a session, events keep their interleaved
/// arrival order.
pub fn parse_multi_trace(text: &str) -> Result<Vec<(String, Trace)>, TraceError> {
    let mut out: Vec<(String, Trace)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let base = offset_in(text, raw);
        let Some((sid, rest)) = split_session_line(raw) else {
            // Only structure-free lines may go unprefixed.
            let stripped = match raw.find('#') {
                Some(c) => &raw[..c],
                None => raw,
            };
            if !stripped.trim().is_empty() {
                return err(line_no, base, "expected a `@session` prefix");
            }
            continue;
        };
        if !is_session_id(sid) {
            return err(line_no, base, format!("invalid session id `@{sid}`"));
        }
        let t = match out.iter_mut().find(|(s, _)| s == sid) {
            Some((_, t)) => t,
            None => {
                out.push((sid.to_owned(), Trace::new()));
                &mut out.last_mut().expect("just pushed").1
            }
        };
        parse_trace_line(t, rest, line_no, base + offset_in(raw, rest))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::litmus::parse_history;

    #[test]
    fn parses_events_and_headers() {
        let t = parse_trace("procs p q\nlocs x y\np w(x)1\nq r(x)1\nq wl(y)2\n").unwrap();
        assert_eq!(t.num_procs(), 2);
        assert_eq!(t.num_locs(), 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.events()[0].proc, ProcId(0));
        assert_eq!(t.events()[1].proc, ProcId(1));
        assert!(t.events()[2].label.is_labeled());
        assert_eq!(t.events()[2].value, Value(2));
    }

    #[test]
    fn headers_are_optional_and_names_intern_on_first_use() {
        let t = parse_trace("p w(x)1\nq r(x)1\n").unwrap();
        assert_eq!(t.proc_names(), ["p", "q"]);
        assert_eq!(t.loc_names(), ["x"]);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let t = parse_trace("# hello\n\nprocs p # inline\np w(x)1 # trailing\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn multiple_ops_per_line_arrive_in_order() {
        let t = parse_trace("p w(x)1 r(y)0\n").unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.events()[0].kind.is_write());
        assert!(t.events()[1].kind.is_read());
    }

    #[test]
    fn history_respects_arrival_interleaving() {
        let t = parse_trace("p w(x)1\nq w(x)2\np r(x)2\n").unwrap();
        let h = t.history();
        assert_eq!(h.num_procs(), 2);
        assert_eq!(h.proc_ops(ProcId(0)).len(), 2);
        assert_eq!(h.proc_ops(ProcId(1)).len(), 1);
        // p's program order is its arrival order: w(x)1 then r(x)2.
        assert!(h.proc_ops(ProcId(0))[0].is_write());
        assert!(h.proc_ops(ProcId(0))[1].is_read());
    }

    #[test]
    fn empty_procs_survive_round_trip() {
        let t = parse_trace("procs p idle\nlocs x\np w(x)1\n").unwrap();
        let back = parse_trace(&emit_trace(&t)).unwrap();
        assert_eq!(back, t);
        let h = t.history();
        assert_eq!(h.num_procs(), 2);
        assert!(h.proc_ops(ProcId(1)).is_empty());
    }

    #[test]
    fn from_history_round_trips() {
        let h = parse_history("p: w(x)1 rl(y)0\nq: W(y)2\nidle:").unwrap();
        let t = Trace::from_history(&h);
        assert_eq!(t.history(), h);
        let back = parse_trace(&emit_trace(&t)).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.history(), h);
    }

    #[test]
    fn prefix_histories_share_tables() {
        let t = parse_trace("procs p q\nlocs x y\np w(x)1\nq r(y)0\n").unwrap();
        let h0 = t.history_of_prefix(0);
        assert_eq!(h0.num_ops(), 0);
        assert_eq!(h0.num_procs(), 2);
        assert_eq!(h0.num_locs(), 2);
        let h1 = t.history_of_prefix(1);
        assert_eq!(h1.num_ops(), 1);
    }

    #[test]
    fn errors_carry_line_and_byte_offset() {
        let text = "p w(x)1\nq z(x)1\n";
        let e = parse_trace(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.offset, text.find("z(").unwrap());
        assert!(e.message.contains("mnemonic"), "{e}");
        assert!(e.to_string().contains("byte"), "{e}");

        let text = "procs ok 7bad\n";
        let e = parse_trace(text).unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.offset, text.find("7bad").unwrap());

        let e = parse_trace("p\n").unwrap_err();
        assert!(e.message.contains("expected an operation"), "{e}");

        let e = parse_trace("p w(x)\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("missing value"), "{e}");
    }

    #[test]
    fn reserved_words_cannot_name_processors() {
        // `procs`/`locs` at line start always parse as headers, so an
        // event for a processor of that name cannot be expressed.
        let e = parse_trace("procs procs\n").unwrap_err();
        assert!(e.message.contains("invalid processor name"), "{e}");
        let t = parse_trace("locs w(x)1\n").unwrap_err();
        assert!(t.message.contains("invalid location name"), "{t}");
    }

    #[test]
    fn line_at_a_time_parsing_matches_whole_text() {
        let text = "procs p q\nlocs x\np w(x)1\n# note\nq r(x)1\n";
        let mut t = Trace::new();
        let mut offset = 0;
        let mut events = 0;
        for (i, line) in text.lines().enumerate() {
            events += parse_trace_line(&mut t, line, i + 1, offset).unwrap();
            offset += line.len() + 1;
        }
        assert_eq!(events, 2);
        assert_eq!(t, parse_trace(text).unwrap());

        // Errors position themselves relative to the caller's offset.
        let mut t = Trace::new();
        let e = parse_trace_line(&mut t, "p z(x)1", 7, 100).unwrap_err();
        assert_eq!(e.line, 7);
        assert_eq!(e.offset, 102);
    }

    #[test]
    fn emit_is_a_fixed_point() {
        let t = parse_trace("procs p q\nlocs x\np w(x)1\nq r(x)1\n").unwrap();
        let text = emit_trace(&t);
        assert_eq!(emit_trace(&parse_trace(&text).unwrap()), text);
    }

    #[test]
    fn lifecycle_lines_parse_and_round_trip() {
        let text = "procs p q\nlocs x\njoin p\np w(x)1\nretire p\njoin q\nq r(x)1\nretire q\n";
        let t = parse_trace(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(
            t.lifecycle(),
            [
                (0, Lifecycle::Join(ProcId(0))),
                (1, Lifecycle::Retire(ProcId(0))),
                (1, Lifecycle::Join(ProcId(1))),
                (2, Lifecycle::Retire(ProcId(1))),
            ]
        );
        // Emission interleaves the lines back at their positions.
        assert_eq!(emit_trace(&t), text);
        let back = parse_trace(&emit_trace(&t)).unwrap();
        assert_eq!(back, t);
        // The history projection ignores lifecycle lines.
        assert_eq!(
            t.history(),
            parse_trace("procs p q\nlocs x\np w(x)1\nq r(x)1\n")
                .unwrap()
                .history()
        );
    }

    #[test]
    fn lifecycle_interns_new_processors() {
        let t = parse_trace("join late\nlate w(x)1\n").unwrap();
        assert_eq!(t.proc_names(), ["late"]);
        assert_eq!(t.lifecycle(), [(0, Lifecycle::Join(ProcId(0)))]);
    }

    #[test]
    fn lifecycle_lines_reject_bad_names() {
        let e = parse_trace("join\n").unwrap_err();
        assert!(e.message.contains("expected a processor name"), "{e}");
        let e = parse_trace("retire 7bad\n").unwrap_err();
        assert!(e.message.contains("invalid processor name"), "{e}");
        let e = parse_trace("join retire\n").unwrap_err();
        assert!(e.message.contains("invalid processor name"), "{e}");
        // `join`/`retire` are reserved in the procs header too.
        let e = parse_trace("procs p join\n").unwrap_err();
        assert!(e.message.contains("invalid processor name"), "{e}");
    }

    #[test]
    fn session_prefix_splits_and_rejoins() {
        assert_eq!(split_session_line("@s0 p w(x)1"), Some(("s0", "p w(x)1")));
        assert_eq!(
            split_session_line("  @s1 procs p q"),
            Some(("s1", "procs p q"))
        );
        assert_eq!(split_session_line("@lone"), Some(("lone", "")));
        assert_eq!(split_session_line("p w(x)1"), None);
        assert_eq!(split_session_line("# comment"), None);
        assert_eq!(split_session_line(""), None);
        assert_eq!(session_line("s0", "p w(x)1"), "@s0 p w(x)1");
        let joined = session_line("abc", "q r(y)0");
        assert_eq!(split_session_line(&joined), Some(("abc", "q r(y)0")));
    }

    #[test]
    fn session_id_validity() {
        assert!(is_session_id("s0"));
        assert!(is_session_id("client-7.shard_3"));
        assert!(!is_session_id(""));
        assert!(!is_session_id("has space"));
        assert!(!is_session_id("@at"));
        assert!(!is_session_id(&"x".repeat(65)));
    }

    #[test]
    fn multi_trace_demultiplexes_in_first_appearance_order() {
        let text = "# interleaved\n@b procs p q\n@a locs x\n@b p w(x)1\n@a p w(x)2\n@b q r(x)1\n";
        let parts = parse_multi_trace(text).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].0, "b");
        assert_eq!(parts[1].0, "a");
        assert_eq!(parts[0].1.len(), 2);
        assert_eq!(parts[1].1.len(), 1);
        assert_eq!(parts[0].1.num_procs(), 2);
        // Session b's events keep their interleaved arrival order.
        assert!(parts[0].1.events()[0].kind.is_write());
        assert!(parts[0].1.events()[1].kind.is_read());
    }

    #[test]
    fn multi_trace_rejects_bare_and_malformed_lines() {
        let e = parse_multi_trace("@a p w(x)1\np w(x)2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("prefix"), "{e}");

        let e = parse_multi_trace("@ p w(x)1\n").unwrap_err();
        assert!(e.message.contains("invalid session id"), "{e}");

        // Errors inside a session line carry the global byte offset.
        let text = "@a p w(x)1\n@a q z(x)1\n";
        let e = parse_multi_trace(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.offset, text.find("z(").unwrap());
    }

    #[test]
    fn multi_trace_sessions_match_their_unprefixed_parses() {
        let solo = parse_trace("procs p q\np w(x)1\nq r(x)1\n").unwrap();
        let text = "@s procs p q\n@s p w(x)1\n@s q r(x)1\n";
        let parts = parse_multi_trace(text).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].1, solo);
    }
}

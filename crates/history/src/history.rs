//! System execution histories.

use crate::op::{Label, Location, OpId, OpKind, Operation, ProcId};
use std::fmt;
use std::ops::Range;

/// A system execution history: the set `H = {H_p | p ∈ P}` of per-processor
/// operation sequences (Section 2 of the paper).
///
/// Operations are stored in a single flat vector in processor-major order,
/// so [`OpId`]s are dense and can index bit sets and relation matrices
/// directly. Processor and location names from the source litmus text are
/// retained for display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct History {
    pub(crate) ops: Vec<Operation>,
    /// `proc_ranges[p]` is the range of `ops` holding processor `p`'s
    /// operations, in program order.
    pub(crate) proc_ranges: Vec<Range<u32>>,
    pub(crate) proc_names: Vec<String>,
    pub(crate) loc_names: Vec<String>,
}

/// A borrowed view of one processor's execution history `H_p`.
#[derive(Debug, Clone, Copy)]
pub struct ProcHistory<'a> {
    /// The processor whose operations these are.
    pub proc: ProcId,
    /// The operations, in program order.
    pub ops: &'a [Operation],
}

impl History {
    /// Total number of operations across all processors.
    #[inline]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of processors (including ones that issued no operations).
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.proc_ranges.len()
    }

    /// Number of distinct locations named by the history.
    #[inline]
    pub fn num_locs(&self) -> usize {
        self.loc_names.len()
    }

    /// All operations in processor-major order (so `ops()[i].id == OpId(i)`).
    #[inline]
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Look up one operation by identifier.
    ///
    /// # Panics
    /// Panics if `id` is out of range for this history.
    #[inline]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// The operations of processor `p`, in program order.
    ///
    /// # Panics
    /// Panics if `p` is out of range.
    #[inline]
    pub fn proc_ops(&self, p: ProcId) -> &[Operation] {
        let r = &self.proc_ranges[p.index()];
        &self.ops[r.start as usize..r.end as usize]
    }

    /// Iterate over the per-processor histories.
    pub fn procs(&self) -> impl Iterator<Item = ProcHistory<'_>> + '_ {
        (0..self.num_procs()).map(move |p| {
            let proc = ProcId(p as u32);
            ProcHistory {
                proc,
                ops: self.proc_ops(proc),
            }
        })
    }

    /// All write operations to location `loc`, in processor-major order.
    pub fn writes_to(&self, loc: Location) -> impl Iterator<Item = &Operation> + '_ {
        self.ops
            .iter()
            .filter(move |o| o.is_write() && o.loc == loc)
    }

    /// All read operations of location `loc`, in processor-major order.
    pub fn reads_of(&self, loc: Location) -> impl Iterator<Item = &Operation> + '_ {
        self.ops.iter().filter(move |o| o.is_read() && o.loc == loc)
    }

    /// All labeled (synchronization) operations.
    pub fn labeled_ops(&self) -> impl Iterator<Item = &Operation> + '_ {
        self.ops.iter().filter(|o| o.is_labeled())
    }

    /// `true` if the history contains at least one labeled operation.
    pub fn has_labeled_ops(&self) -> bool {
        self.ops.iter().any(|o| o.is_labeled())
    }

    /// The display name of a processor.
    pub fn proc_name(&self, p: ProcId) -> &str {
        &self.proc_names[p.index()]
    }

    /// The display name of a location.
    pub fn loc_name(&self, l: Location) -> &str {
        &self.loc_names[l.index()]
    }

    /// Find a processor by its display name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcId> {
        self.proc_names
            .iter()
            .position(|n| n == name)
            .map(|i| ProcId(i as u32))
    }

    /// Find a location by its display name.
    pub fn loc_by_name(&self, name: &str) -> Option<Location> {
        self.loc_names
            .iter()
            .position(|n| n == name)
            .map(|i| Location(i as u32))
    }

    /// Render one operation in the paper's notation, e.g. `w(x)1` or, for a
    /// labeled read, `rl(y)0`.
    pub fn format_op(&self, id: OpId) -> String {
        let o = self.op(id);
        let k = match (o.kind, o.label) {
            (OpKind::Read, Label::Ordinary) => "r",
            (OpKind::Write, Label::Ordinary) => "w",
            (OpKind::Read, Label::Labeled) => "rl",
            (OpKind::Write, Label::Labeled) => "wl",
        };
        format!("{}({}){}", k, self.loc_name(o.loc), o.value)
    }

    /// Render one operation with its processor subscript, e.g. `w_p(x)1`.
    pub fn format_op_subscripted(&self, id: OpId) -> String {
        let o = self.op(id);
        let k = match (o.kind, o.label) {
            (OpKind::Read, Label::Ordinary) => "r",
            (OpKind::Write, Label::Ordinary) => "w",
            (OpKind::Read, Label::Labeled) => "rl",
            (OpKind::Write, Label::Labeled) => "wl",
        };
        format!(
            "{}_{}({}){}",
            k,
            self.proc_name(o.proc),
            self.loc_name(o.loc),
            o.value
        )
    }

    /// Project the history onto the operations satisfying `keep`, producing
    /// a new dense history plus the mapping from new [`OpId`]s back to the
    /// originals.
    ///
    /// Used by the release-consistency checker, which must decide whether
    /// the *labeled subhistory* satisfies SC or PC (Section 3.4).
    pub fn project<F: Fn(&Operation) -> bool>(&self, keep: F) -> (History, Vec<OpId>) {
        let mut ops = Vec::new();
        let mut back = Vec::new();
        let mut proc_ranges = Vec::with_capacity(self.num_procs());
        for p in 0..self.num_procs() {
            let start = ops.len() as u32;
            for o in self.proc_ops(ProcId(p as u32)) {
                if keep(o) {
                    let mut n = *o;
                    n.id = OpId(ops.len() as u32);
                    n.index = (ops.len() as u32) - start;
                    back.push(o.id);
                    ops.push(n);
                }
            }
            proc_ranges.push(start..ops.len() as u32);
        }
        (
            History {
                ops,
                proc_ranges,
                proc_names: self.proc_names.clone(),
                loc_names: self.loc_names.clone(),
            },
            back,
        )
    }

    /// A sanity check of internal invariants: dense ids, processor-major
    /// layout, program-order indices, and in-range location/processor ids.
    ///
    /// Builders and parsers uphold these by construction; deserialized
    /// histories should be validated before use.
    pub fn validate(&self) -> Result<(), String> {
        let mut cursor = 0u32;
        for (p, r) in self.proc_ranges.iter().enumerate() {
            if r.start != cursor {
                return Err(format!("proc {p}: range not contiguous"));
            }
            cursor = r.end;
            for (i, o) in self.ops[r.start as usize..r.end as usize]
                .iter()
                .enumerate()
            {
                if o.proc.index() != p {
                    return Err(format!("op {}: wrong proc", o.id));
                }
                if o.index as usize != i {
                    return Err(format!("op {}: wrong program index", o.id));
                }
                if o.loc.index() >= self.loc_names.len() {
                    return Err(format!("op {}: location out of range", o.id));
                }
            }
        }
        if cursor as usize != self.ops.len() {
            return Err("trailing operations not covered by any processor".into());
        }
        for (i, o) in self.ops.iter().enumerate() {
            if o.id.index() != i {
                return Err(format!("op at {i} has id {}", o.id));
            }
        }
        if self.proc_names.len() != self.proc_ranges.len() {
            return Err("processor name table size mismatch".into());
        }
        Ok(())
    }

    /// `true` if every written value in the history is distinct per
    /// location (so the reads-from relation is uniquely determined).
    pub fn has_unique_written_values(&self) -> bool {
        for l in 0..self.num_locs() {
            let loc = Location(l as u32);
            let mut seen = Vec::new();
            for w in self.writes_to(loc) {
                if w.value.is_initial() || seen.contains(&w.value) {
                    return false;
                }
                seen.push(w.value);
            }
        }
        true
    }
}

impl fmt::Display for History {
    /// Paper-style rendering:
    ///
    /// ```text
    /// p: w(x)1 r(y)0
    /// q: w(y)1 r(x)0
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.proc_names.iter().map(|n| n.len()).max().unwrap_or(1);
        for ph in self.procs() {
            write!(f, "{:>width$}:", self.proc_name(ph.proc), width = width)?;
            for o in ph.ops {
                write!(f, " {}", self.format_op(o.id))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::op::{Location, OpId, ProcId, Value};
    use crate::HistoryBuilder;

    fn fig1() -> crate::History {
        let mut b = HistoryBuilder::new();
        b.write("p", "x", 1);
        b.read("p", "y", 0);
        b.write("q", "y", 1);
        b.read("q", "x", 0);
        b.build()
    }

    #[test]
    fn dense_ids_and_ranges() {
        let h = fig1();
        assert_eq!(h.num_ops(), 4);
        assert_eq!(h.num_procs(), 2);
        assert_eq!(h.num_locs(), 2);
        for (i, o) in h.ops().iter().enumerate() {
            assert_eq!(o.id, OpId(i as u32));
        }
        assert_eq!(h.proc_ops(ProcId(0)).len(), 2);
        assert_eq!(h.proc_ops(ProcId(1)).len(), 2);
        h.validate().unwrap();
    }

    #[test]
    fn name_lookup_round_trips() {
        let h = fig1();
        let p = h.proc_by_name("p").unwrap();
        assert_eq!(h.proc_name(p), "p");
        let x = h.loc_by_name("x").unwrap();
        assert_eq!(h.loc_name(x), "x");
        assert!(h.proc_by_name("zz").is_none());
        assert!(h.loc_by_name("zz").is_none());
    }

    #[test]
    fn writes_and_reads_queries() {
        let h = fig1();
        let x = h.loc_by_name("x").unwrap();
        let writes: Vec<_> = h.writes_to(x).collect();
        assert_eq!(writes.len(), 1);
        assert_eq!(writes[0].value, Value(1));
        let reads: Vec<_> = h.reads_of(x).collect();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].proc, ProcId(1));
    }

    #[test]
    fn display_matches_paper_notation() {
        let h = fig1();
        let s = h.to_string();
        assert_eq!(s, "p: w(x)1 r(y)0\nq: w(y)1 r(x)0\n");
    }

    #[test]
    fn projection_renumbers_densely() {
        let mut b = HistoryBuilder::new();
        b.write("p", "x", 1);
        b.labeled_write("p", "s", 1);
        b.labeled_read("q", "s", 1);
        b.read("q", "x", 1);
        let h = b.build();
        let (sub, back) = h.project(|o| o.is_labeled());
        assert_eq!(sub.num_ops(), 2);
        sub.validate().unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(h.op(back[0]).loc, sub.op(OpId(0)).loc);
        assert!(sub.ops().iter().all(|o| o.is_labeled()));
    }

    #[test]
    fn unique_written_values_detection() {
        let h = fig1();
        assert!(h.has_unique_written_values());
        let mut b = HistoryBuilder::new();
        b.write("p", "x", 1);
        b.write("q", "x", 1);
        let dup = b.build();
        assert!(!dup.has_unique_written_values());
        let mut b = HistoryBuilder::new();
        b.write("p", "x", 0);
        let zero = b.build();
        assert!(!zero.has_unique_written_values());
    }

    #[test]
    fn empty_processor_allowed() {
        let mut b = HistoryBuilder::new();
        b.add_proc("p");
        b.write("q", "x", 1);
        let h = b.build();
        assert_eq!(h.num_procs(), 2);
        assert!(h.proc_ops(ProcId(0)).is_empty());
        h.validate().unwrap();
    }

    #[test]
    fn validate_rejects_corruption() {
        let mut h = fig1();
        h.ops[2].id = OpId(0);
        assert!(h.validate().is_err());
        let mut h2 = fig1();
        h2.ops[1].loc = Location(99);
        assert!(h2.validate().is_err());
    }
}

//! A parser for the paper's litmus notation.
//!
//! A *history* is one line per processor:
//!
//! ```text
//! p: w(x)1 r(y)0
//! q: w(y)1 r(x)0
//! ```
//!
//! Operation mnemonics are `w` / `r` for ordinary writes and reads and
//! `wl` / `rl` (or `W` / `R`) for labeled (synchronization) operations.
//! Location names are identifiers, optionally with an array subscript
//! (`number[0]`); values are (possibly negative) integers. `#` starts a
//! comment that runs to end of line.
//!
//! A *suite* packages named histories with per-model expectations:
//!
//! ```text
//! test fig1 "TSO but not SC" {
//!     p: w(x)1 r(y)0
//!     q: w(y)1 r(x)0
//! } expect { SC: no, TSO: yes }
//! ```

use crate::builder::HistoryBuilder;
use crate::history::History;
use crate::op::{Label, OpKind};
use std::fmt;

/// A parse failure, carrying a 1-based line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line on which the error was detected.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "litmus parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// A named litmus test: a history plus expected verdicts per model name.
///
/// Expectations are keyed by model *name* (e.g. `"TSO"`); the checker crate
/// resolves names to models. `true` means the history must be admitted.
#[derive(Debug, Clone)]
pub struct LitmusTest {
    /// Identifier of the test (e.g. `fig1`).
    pub name: String,
    /// Optional human-readable description.
    pub description: String,
    /// The system execution history under test.
    pub history: History,
    /// `(model name, expected admitted?)` pairs, in source order.
    pub expectations: Vec<(String, bool)>,
}

impl LitmusTest {
    /// The expected verdict for `model`, if the test states one.
    pub fn expectation(&self, model: &str) -> Option<bool> {
        self.expectations
            .iter()
            .find(|(m, _)| m.eq_ignore_ascii_case(model))
            .map(|&(_, v)| v)
    }
}

/// Parse a bare history (no `test` wrapper) from litmus text.
pub fn parse_history(text: &str) -> Result<History, ParseError> {
    let mut b = HistoryBuilder::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        parse_proc_line(&mut b, line, line_no)?;
    }
    Ok(b.build())
}

/// Parse a suite of [`LitmusTest`]s.
pub fn parse_suite(text: &str) -> Result<Vec<LitmusTest>, ParseError> {
    let mut tests = Vec::new();
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, strip_comment(l).trim().to_owned()))
        .filter(|(_, l)| !l.is_empty())
        .collect::<Vec<_>>()
        .into_iter()
        .peekable();

    while let Some((line_no, header)) = lines.next() {
        let rest = match header.strip_prefix("test") {
            Some(r) if r.starts_with(char::is_whitespace) => r.trim_start(),
            _ => {
                return err(
                    line_no,
                    format!("expected `test <name> ... {{`, found `{header}`"),
                )
            }
        };
        let (name, rest) = take_ident(rest).ok_or_else(|| ParseError {
            line: line_no,
            message: "missing test name".into(),
        })?;
        let rest = rest.trim_start();
        let (description, rest) = if let Some(r) = rest.strip_prefix('"') {
            let end = r.find('"').ok_or_else(|| ParseError {
                line: line_no,
                message: "unterminated description string".into(),
            })?;
            (r[..end].to_owned(), r[end + 1..].trim_start())
        } else {
            (String::new(), rest)
        };
        if rest != "{" {
            return err(line_no, "expected `{` to open the test body");
        }

        let mut b = HistoryBuilder::new();
        let mut expectations = Vec::new();
        let mut closed = false;
        while let Some((body_line_no, body)) = lines.next() {
            if let Some(tail) = body.strip_prefix('}') {
                let tail = tail.trim_start();
                // An `expect { ... }` block may span multiple lines;
                // gather segments (keeping their line numbers for error
                // reporting) until its closing brace.
                let mut segments: Vec<(usize, String)> = Vec::new();
                if !tail.is_empty() {
                    segments.push((body_line_no, tail.to_owned()));
                }
                if tail.starts_with("expect") {
                    let mut terminated = tail.contains('}');
                    while !terminated {
                        match lines.next() {
                            Some((no, more)) => {
                                terminated = more.contains('}');
                                segments.push((no, more));
                            }
                            None => {
                                return err(body_line_no, "unterminated expect block");
                            }
                        }
                    }
                }
                if !segments.is_empty() {
                    expectations = parse_expect(&segments)?;
                }
                closed = true;
                break;
            }
            parse_proc_line(&mut b, &body, body_line_no)?;
        }
        if !closed {
            return err(line_no, format!("test `{name}` has no closing `}}`"));
        }
        tests.push(LitmusTest {
            name: name.to_owned(),
            description,
            history: b.build(),
            expectations,
        });
    }
    Ok(tests)
}

/// Render a history in the litmus notation this module parses. The text
/// is the canonical serialization: `parse_history(emit_litmus(h))`
/// reproduces `h` exactly (same processors, in order, with identical
/// operation sequences), provided every processor name round-trips
/// through the parser — which holds for all builder- or parser-produced
/// histories.
pub fn emit_litmus(h: &History) -> String {
    h.to_string()
}

/// Render a [`LitmusTest`] as a `test <name> "<description>" { ... }
/// expect { ... }` block that [`parse_suite`] reads back. The test name
/// must be an identifier and the description must not contain `"`; both
/// are debug-asserted.
pub fn emit_litmus_test(t: &LitmusTest) -> String {
    debug_assert!(
        is_ident(&t.name),
        "test name `{}` is not an identifier",
        t.name
    );
    debug_assert!(
        !t.description.contains('"'),
        "description must not contain a quote"
    );
    let mut s = format!("test {}", t.name);
    if !t.description.is_empty() {
        s.push_str(&format!(" \"{}\"", t.description));
    }
    s.push_str(" {\n");
    for line in emit_litmus(&t.history).lines() {
        s.push_str("    ");
        s.push_str(line.trim_start());
        s.push('\n');
    }
    s.push('}');
    if !t.expectations.is_empty() {
        let items: Vec<String> = t
            .expectations
            .iter()
            .map(|(m, v)| format!("{m}: {}", if *v { "yes" } else { "no" }))
            .collect();
        s.push_str(&format!(" expect {{ {} }}", items.join(", ")));
    }
    s.push('\n');
    s
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Parse `expect { SC: no, TSO: yes }` from the gathered segments that
/// followed a test's closing `}` — one `(line number, text)` pair per
/// source line, so every error can name the line it occurred on.
fn parse_expect(segments: &[(usize, String)]) -> Result<Vec<(String, bool)>, ParseError> {
    // Join the segments into one string, remembering where each source
    // line starts so offsets map back to line numbers.
    let mut text = String::new();
    let mut starts: Vec<(usize, usize)> = Vec::new();
    for (line_no, seg) in segments {
        if !text.is_empty() {
            text.push(' ');
        }
        starts.push((text.len(), *line_no));
        text.push_str(seg);
    }
    let first_line = segments.first().map_or(0, |&(no, _)| no);
    let line_at = |offset: usize| -> usize {
        starts
            .iter()
            .rev()
            .find(|&&(start, _)| start <= offset)
            .map_or(first_line, |&(_, no)| no)
    };

    let Some(after_kw) = text.strip_prefix("expect") else {
        return err(
            first_line,
            format!("expected `expect {{...}}` after `}}`, found `{text}`"),
        );
    };
    let open = text.len() - after_kw.trim_start().len();
    if !text[open..].starts_with('{') {
        return err(line_at(open), "expectations must be wrapped in `{...}`");
    }
    let close = match text.rfind('}') {
        Some(close) if close > open => close,
        _ => return err(line_at(open), "expectations must be wrapped in `{...}`"),
    };
    let trailing = text[close + 1..].trim();
    if !trailing.is_empty() {
        return err(
            line_at(close + 1),
            format!("unexpected text after expect block: `{trailing}`"),
        );
    }

    let mut out: Vec<(String, bool)> = Vec::new();
    let mut item_start = open + 1;
    while item_start <= close {
        let item_end = text[item_start..close]
            .find(',')
            .map_or(close, |i| item_start + i);
        let item = text[item_start..item_end].trim();
        let item_line = {
            let leading =
                text[item_start..item_end].len() - text[item_start..item_end].trim_start().len();
            line_at(item_start + leading)
        };
        item_start = item_end + 1;
        if item.is_empty() {
            continue;
        }
        let Some((model, verdict)) = item.split_once(':') else {
            return err(
                item_line,
                format!("expectation `{item}` is not `MODEL: yes|no`"),
            );
        };
        let model = model.trim();
        if !is_ident(model) {
            return err(item_line, format!("invalid model name `{model}`"));
        }
        let v = match verdict.trim() {
            "yes" | "true" | "allowed" => true,
            "no" | "false" | "forbidden" => false,
            other => {
                return err(item_line, format!("unknown verdict `{other}` (use yes/no)"));
            }
        };
        if out.iter().any(|(m, _)| m.eq_ignore_ascii_case(model)) {
            return err(
                item_line,
                format!("duplicate expectation for model `{model}`"),
            );
        }
        out.push((model.to_owned(), v));
    }
    Ok(out)
}

/// Parse `p: w(x)1 r(y)0` into the builder.
fn parse_proc_line(b: &mut HistoryBuilder, line: &str, line_no: usize) -> Result<(), ParseError> {
    let (proc, ops) = line.split_once(':').ok_or_else(|| ParseError {
        line: line_no,
        message: format!("expected `proc: ops...`, found `{line}`"),
    })?;
    let proc = proc.trim();
    if proc.is_empty() || !is_ident(proc) {
        return err(line_no, format!("invalid processor name `{proc}`"));
    }
    b.add_proc(proc);
    let mut rest = ops.trim();
    while !rest.is_empty() {
        rest = parse_op(b, proc, rest, line_no)?.trim_start();
    }
    Ok(())
}

/// Parse a single `w(x)1`-style operation from the front of `s`; returns
/// the remainder.
fn parse_op<'a>(
    b: &mut HistoryBuilder,
    proc: &str,
    s: &'a str,
    line_no: usize,
) -> Result<&'a str, ParseError> {
    let tok = parse_op_token(s).map_err(|message| ParseError {
        line: line_no,
        message,
    })?;
    b.push(proc, tok.kind, tok.loc, tok.value, tok.label);
    Ok(tok.rest)
}

/// A `w(x)1`-style operation token parsed off the front of a line, shared
/// between the litmus and trace formats.
pub(crate) struct OpToken<'a> {
    pub kind: OpKind,
    pub label: Label,
    pub loc: &'a str,
    pub value: i64,
    /// Unconsumed remainder of the input.
    pub rest: &'a str,
}

/// Parse one operation token from the front of `s`. On failure the error
/// is a bare message; callers attach their own position information.
pub(crate) fn parse_op_token(s: &str) -> Result<OpToken<'_>, String> {
    let open = s
        .find('(')
        .ok_or_else(|| format!("expected `(` in operation near `{s}`"))?;
    let (kind, label) = match &s[..open] {
        "w" => (OpKind::Write, Label::Ordinary),
        "r" => (OpKind::Read, Label::Ordinary),
        "wl" | "W" => (OpKind::Write, Label::Labeled),
        "rl" | "R" => (OpKind::Read, Label::Labeled),
        other => {
            return Err(format!(
                "unknown operation mnemonic `{other}` (use w/r/wl/rl)"
            ))
        }
    };
    let after_open = &s[open + 1..];
    let close = after_open
        .find(')')
        .ok_or_else(|| format!("missing `)` in operation near `{s}`"))?;
    let loc = after_open[..close].trim();
    if loc.is_empty() || !is_loc_name(loc) {
        return Err(format!("invalid location name `{loc}`"));
    }
    let after_close = &after_open[close + 1..];
    let val_len = value_prefix_len(after_close);
    if val_len == 0 {
        return Err(format!("missing value after `)` near `{after_close}`"));
    }
    let value: i64 = after_close[..val_len]
        .parse()
        .map_err(|_| format!("invalid value `{}`", &after_close[..val_len]))?;
    Ok(OpToken {
        kind,
        label,
        loc,
        value,
        rest: &after_close[val_len..],
    })
}

fn value_prefix_len(s: &str) -> usize {
    let bytes = s.as_bytes();
    let mut i = 0;
    if bytes.first() == Some(&b'-') {
        i = 1;
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i == 1 && bytes[0] == b'-' {
        0
    } else {
        i
    }
}

pub(crate) fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

pub(crate) fn is_loc_name(s: &str) -> bool {
    s.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '[' || c == ']')
        && s.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_')
}

fn take_ident(s: &str) -> Option<(&str, &str)> {
    let end = s
        .char_indices()
        .find(|&(_, c)| !(c.is_ascii_alphanumeric() || c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    if end == 0 {
        None
    } else {
        Some((&s[..end], &s[end..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ProcId, Value};

    #[test]
    fn parses_fig1() {
        let h = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
        assert_eq!(h.num_ops(), 4);
        assert_eq!(h.num_procs(), 2);
        assert_eq!(h.to_string(), "p: w(x)1 r(y)0\nq: w(y)1 r(x)0\n");
    }

    #[test]
    fn parses_labeled_ops_and_arrays() {
        let h = parse_history("p1: wl(choosing[0])1 rl(number[1])0 w(d)5").unwrap();
        let ops = h.ops();
        assert!(ops[0].is_release());
        assert!(ops[1].is_acquire());
        assert!(!ops[2].is_labeled());
        assert_eq!(h.loc_name(ops[0].loc), "choosing[0]");
    }

    #[test]
    fn uppercase_mnemonics_are_labeled() {
        let h = parse_history("p: W(s)1 R(s)1").unwrap();
        assert!(h.ops()[0].is_release());
        assert!(h.ops()[1].is_acquire());
    }

    #[test]
    fn negative_values_and_comments() {
        let h = parse_history("# leading comment\np: w(x)-3 # trailing\n\nq: r(x)-3").unwrap();
        assert_eq!(h.ops()[0].value, Value(-3));
        assert_eq!(h.ops()[1].value, Value(-3));
    }

    #[test]
    fn multiple_lines_same_proc_accumulate() {
        let h = parse_history("p: w(x)1\np: r(y)0").unwrap();
        assert_eq!(h.num_procs(), 1);
        assert_eq!(h.proc_ops(ProcId(0)).len(), 2);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_history("p: w(x)1\nq: z(x)1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("mnemonic"));
        let e = parse_history("p w(x)1").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn rejects_missing_value_and_paren() {
        assert!(parse_history("p: w(x)").is_err());
        assert!(parse_history("p: w(x 1").is_err());
        assert!(parse_history("p: w()1").is_err());
        assert!(parse_history("p: w(x)-").is_err());
    }

    #[test]
    fn parses_suite_with_expectations() {
        let suite = parse_suite(
            r#"
            # figure 1 of the paper
            test fig1 "TSO but not SC" {
                p: w(x)1 r(y)0
                q: w(y)1 r(x)0
            } expect { SC: no, TSO: yes, PC: yes }

            test empty {
                p: w(x)1
            }
            "#,
        )
        .unwrap();
        assert_eq!(suite.len(), 2);
        let t = &suite[0];
        assert_eq!(t.name, "fig1");
        assert_eq!(t.description, "TSO but not SC");
        assert_eq!(t.expectation("sc"), Some(false));
        assert_eq!(t.expectation("TSO"), Some(true));
        assert_eq!(t.expectation("PRAM"), None);
        assert!(suite[1].expectations.is_empty());
    }

    #[test]
    fn suite_errors() {
        assert!(parse_suite("test {").is_err());
        assert!(parse_suite("test t \"unterminated {").is_err());
        assert!(parse_suite("test t {\n p: w(x)1").is_err());
        assert!(parse_suite("test t {\n} expect SC: yes").is_err());
        assert!(parse_suite("test t {\n} expect { SC maybe }").is_err());
        assert!(parse_suite("test t {\n} expect { SC: maybe }").is_err());
    }

    #[test]
    fn duplicate_expectations_rejected() {
        let e = parse_suite("test t {\n p: w(x)1\n} expect { SC: yes, SC: no }").unwrap_err();
        assert!(e.message.contains("duplicate expectation"), "{e}");
        assert_eq!(e.line, 3);
        // Case-insensitive, matching `LitmusTest::expectation` lookup.
        let e = parse_suite("test t {\n p: w(x)1\n} expect { SC: yes, sc: yes }").unwrap_err();
        assert!(e.message.contains("duplicate expectation"), "{e}");
    }

    #[test]
    fn expect_errors_carry_line_numbers() {
        // Multiline expect block: the error names the continuation line
        // the bad item is on, not the line the block opened on.
        let e = parse_suite("test t {\n p: w(x)1\n} expect { SC: yes,\n TSO: maybe,\n PC: no }")
            .unwrap_err();
        assert_eq!(e.line, 4, "{e}");
        assert!(e.message.contains("maybe"), "{e}");

        let e = parse_suite("test t {\n p: w(x)1\n} expect { SC: yes,\n 7up: no }").unwrap_err();
        assert_eq!(e.line, 4, "{e}");
        assert!(e.message.contains("invalid model name"), "{e}");
    }

    #[test]
    fn expect_rejects_trailing_text() {
        let e = parse_suite("test t {\n p: w(x)1\n} expect { SC: yes } junk").unwrap_err();
        assert!(e.message.contains("unexpected text"), "{e}");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn multiline_expect_blocks_parse() {
        let suite =
            parse_suite("test t {\n p: w(x)1\n} expect {\n SC: yes,\n TSO: yes,\n PRAM: no\n}")
                .unwrap();
        assert_eq!(
            suite[0].expectations,
            vec![
                ("SC".to_owned(), true),
                ("TSO".to_owned(), true),
                ("PRAM".to_owned(), false)
            ]
        );
    }

    #[test]
    fn unterminated_expect_block_reports_opening_line() {
        let e = parse_suite("test t {\n p: w(x)1\n} expect { SC: yes,\n TSO: yes").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unterminated expect block"), "{e}");
    }

    #[test]
    fn emit_litmus_round_trips() {
        let h = parse_history("p: w(x)1 rl(y)0\nq: W(y)2\nidle:").unwrap();
        let back = parse_history(&emit_litmus(&h)).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn emit_litmus_test_round_trips() {
        let t = LitmusTest {
            name: "sep_tso_not_sc".into(),
            description: "TSO admits, SC refutes".into(),
            history: parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap(),
            expectations: vec![("TSO".into(), true), ("SC".into(), false)],
        };
        let text = emit_litmus_test(&t);
        let back = parse_suite(&text).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].name, t.name);
        assert_eq!(back[0].description, t.description);
        assert_eq!(back[0].history, t.history);
        assert_eq!(back[0].expectations, t.expectations);
        // No expectations → no expect block, still parseable.
        let bare = LitmusTest {
            expectations: Vec::new(),
            ..t
        };
        let back = parse_suite(&emit_litmus_test(&bare)).unwrap();
        assert!(back[0].expectations.is_empty());
    }

    #[test]
    fn suite_text_round_trip() {
        // The litmus text is the canonical serialization: rendering a
        // parsed history and re-wrapping it in a suite block must
        // reproduce the history and expectations exactly.
        let suite = parse_suite("test t \"d\" {\n p: w(x)1 rl(y)0\n} expect { SC: yes }").unwrap();
        let text = format!(
            "test t \"d\" {{\n{}}} expect {{ SC: yes }}",
            suite[0].history
        );
        let back = parse_suite(&text).unwrap();
        assert_eq!(back[0].history, suite[0].history);
        assert_eq!(back[0].expectations, suite[0].expectations);
    }
}

//! The operation vocabulary: identifiers, kinds, labels and values.

use std::fmt;

/// Dense identifier of a processor within a [`crate::History`].
///
/// Processors are numbered `0..num_procs` in the order they were added to
/// the history; the history's symbol table maps them back to their source
/// names (`p`, `q`, ... in the paper's figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Dense identifier of a shared-memory location.
///
/// The paper assumes a finite set of named locations, all holding the
/// initial value `0`. Locations are interned by the history builder; the
/// numeric form keeps per-location bookkeeping (coherence orders, last
/// writes) as flat arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location(pub u32);

impl Location {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A value stored in, or read from, a memory location.
///
/// All locations initially hold [`Value::INITIAL`] (zero), matching the
/// paper's footnote 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Value(pub i64);

impl Value {
    /// The initial value of every location (the paper assumes `0`).
    pub const INITIAL: Value = Value(0);

    /// Whether this is the initial value.
    #[inline]
    pub fn is_initial(self) -> bool {
        self == Self::INITIAL
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value(v)
    }
}

/// Globally dense identifier of an operation within a [`crate::History`].
///
/// Identifiers are assigned in processor-major order (`P0`'s operations
/// first, in program order, then `P1`'s, ...) so they double as indices
/// into bit sets and relation matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// The identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Whether an operation is a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A read (the paper's `r(x)v`): reports that `v` is stored in `x`.
    Read,
    /// A write (the paper's `w(x)v`): stores `v` in `x`.
    Write,
}

impl OpKind {
    /// `true` for [`OpKind::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, OpKind::Read)
    }

    /// `true` for [`OpKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, OpKind::Write)
    }
}

/// The paper's distinction between *ordinary* and *labeled* operations.
///
/// Release consistency (Section 3.4) divides operations into ordinary ones
/// and labeled (synchronization) ones; a labeled read acts as an *acquire*
/// and a labeled write as a *release*. Models that do not distinguish
/// (SC, TSO, PC, PRAM, causal) simply ignore the label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Label {
    /// An ordinary data operation.
    #[default]
    Ordinary,
    /// A labeled (synchronization) operation: acquire if a read, release if
    /// a write.
    Labeled,
}

impl Label {
    /// `true` for [`Label::Labeled`].
    #[inline]
    pub fn is_labeled(self) -> bool {
        matches!(self, Label::Labeled)
    }
}

/// A single read or write operation in a system execution history.
///
/// `w_p(x)v` in the paper becomes `Operation { proc: p, kind: Write,
/// loc: x, value: v, .. }`. The pair `(proc, index)` gives the operation's
/// position in program order; `id` is the dense global identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operation {
    /// Dense global identifier (index into relation matrices and bit sets).
    pub id: OpId,
    /// The issuing processor.
    pub proc: ProcId,
    /// Zero-based position within the issuing processor's program order.
    pub index: u32,
    /// Read or write.
    pub kind: OpKind,
    /// The accessed location.
    pub loc: Location,
    /// The value written (for writes) or reported (for reads).
    pub value: Value,
    /// Ordinary or labeled (synchronization) operation.
    pub label: Label,
}

impl Operation {
    /// `true` if this operation is a read.
    #[inline]
    pub fn is_read(&self) -> bool {
        self.kind.is_read()
    }

    /// `true` if this operation is a write.
    #[inline]
    pub fn is_write(&self) -> bool {
        self.kind.is_write()
    }

    /// `true` if this operation is labeled (a synchronization operation).
    #[inline]
    pub fn is_labeled(&self) -> bool {
        self.label.is_labeled()
    }

    /// `true` if this is a labeled read — an *acquire* in release
    /// consistency.
    #[inline]
    pub fn is_acquire(&self) -> bool {
        self.is_labeled() && self.is_read()
    }

    /// `true` if this is a labeled write — a *release* in release
    /// consistency.
    #[inline]
    pub fn is_release(&self) -> bool {
        self.is_labeled() && self.is_write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_initial_is_zero() {
        assert_eq!(Value::INITIAL, Value(0));
        assert!(Value(0).is_initial());
        assert!(!Value(1).is_initial());
    }

    #[test]
    fn op_kind_predicates() {
        assert!(OpKind::Read.is_read());
        assert!(!OpKind::Read.is_write());
        assert!(OpKind::Write.is_write());
        assert!(!OpKind::Write.is_read());
    }

    #[test]
    fn label_default_is_ordinary() {
        assert_eq!(Label::default(), Label::Ordinary);
        assert!(!Label::Ordinary.is_labeled());
        assert!(Label::Labeled.is_labeled());
    }

    #[test]
    fn operation_acquire_release() {
        let base = Operation {
            id: OpId(0),
            proc: ProcId(0),
            index: 0,
            kind: OpKind::Read,
            loc: Location(0),
            value: Value(1),
            label: Label::Labeled,
        };
        assert!(base.is_acquire());
        assert!(!base.is_release());
        let rel = Operation {
            kind: OpKind::Write,
            ..base
        };
        assert!(rel.is_release());
        assert!(!rel.is_acquire());
        let ord = Operation {
            label: Label::Ordinary,
            ..base
        };
        assert!(!ord.is_acquire() && !ord.is_release());
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(OpId(1) < OpId(2));
        assert_eq!(OpId(3).to_string(), "#3");
        assert_eq!(ProcId(2).to_string(), "P2");
        assert_eq!(Location(5).to_string(), "L5");
        assert_eq!(Value(-4).to_string(), "-4");
    }
}

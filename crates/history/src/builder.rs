//! Programmatic construction of histories.

use crate::history::History;
use crate::op::{Label, Location, OpId, OpKind, Operation, ProcId, Value};

/// Builds a [`History`] incrementally, interning processor and location
/// names in first-use order.
///
/// Operations may be added for processors in any interleaving; the builder
/// groups them per processor, and [`HistoryBuilder::build`] lays them out in
/// processor-major order with dense [`OpId`]s.
///
/// ```
/// use smc_history::HistoryBuilder;
///
/// let mut b = HistoryBuilder::new();
/// b.write("p", "x", 1);
/// b.read("p", "y", 0);
/// b.write("q", "y", 1);
/// b.read("q", "x", 0);
/// let h = b.build();
/// assert_eq!(h.num_ops(), 4);
/// ```
#[derive(Debug, Default, Clone)]
pub struct HistoryBuilder {
    proc_names: Vec<String>,
    loc_names: Vec<String>,
    /// Per-processor pending operations: (kind, loc, value, label).
    pending: Vec<Vec<(OpKind, Location, Value, Label)>>,
}

impl HistoryBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern (or look up) a processor by name, creating it with an empty
    /// operation sequence if new.
    pub fn add_proc(&mut self, name: &str) -> ProcId {
        if let Some(i) = self.proc_names.iter().position(|n| n == name) {
            return ProcId(i as u32);
        }
        self.proc_names.push(name.to_owned());
        self.pending.push(Vec::new());
        ProcId((self.proc_names.len() - 1) as u32)
    }

    /// Intern (or look up) a location by name.
    pub fn add_loc(&mut self, name: &str) -> Location {
        if let Some(i) = self.loc_names.iter().position(|n| n == name) {
            return Location(i as u32);
        }
        self.loc_names.push(name.to_owned());
        Location((self.loc_names.len() - 1) as u32)
    }

    /// Append an operation with explicit kind and label to `proc`'s program
    /// order.
    pub fn push(
        &mut self,
        proc: &str,
        kind: OpKind,
        loc: &str,
        value: impl Into<Value>,
        label: Label,
    ) {
        let p = self.add_proc(proc);
        let l = self.add_loc(loc);
        self.pending[p.index()].push((kind, l, value.into(), label));
    }

    /// Append an ordinary write `w(loc)value` to `proc`.
    pub fn write(&mut self, proc: &str, loc: &str, value: impl Into<Value>) {
        self.push(proc, OpKind::Write, loc, value, Label::Ordinary);
    }

    /// Append an ordinary read `r(loc)value` to `proc`.
    pub fn read(&mut self, proc: &str, loc: &str, value: impl Into<Value>) {
        self.push(proc, OpKind::Read, loc, value, Label::Ordinary);
    }

    /// Append a labeled write (release) `wl(loc)value` to `proc`.
    pub fn labeled_write(&mut self, proc: &str, loc: &str, value: impl Into<Value>) {
        self.push(proc, OpKind::Write, loc, value, Label::Labeled);
    }

    /// Append a labeled read (acquire) `rl(loc)value` to `proc`.
    pub fn labeled_read(&mut self, proc: &str, loc: &str, value: impl Into<Value>) {
        self.push(proc, OpKind::Read, loc, value, Label::Labeled);
    }

    /// Number of operations added so far.
    pub fn num_ops(&self) -> usize {
        self.pending.iter().map(Vec::len).sum()
    }

    /// Finalize into a [`History`] with dense processor-major [`OpId`]s.
    pub fn build(self) -> History {
        let mut ops = Vec::with_capacity(self.num_ops());
        let mut proc_ranges = Vec::with_capacity(self.pending.len());
        for (p, seq) in self.pending.into_iter().enumerate() {
            let start = ops.len() as u32;
            for (i, (kind, loc, value, label)) in seq.into_iter().enumerate() {
                ops.push(Operation {
                    id: OpId(ops.len() as u32),
                    proc: ProcId(p as u32),
                    index: i as u32,
                    kind,
                    loc,
                    value,
                    label,
                });
            }
            proc_ranges.push(start..ops.len() as u32);
        }
        let h = History {
            ops,
            proc_ranges,
            proc_names: self.proc_names,
            loc_names: self.loc_names,
        };
        debug_assert!(h.validate().is_ok());
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut b = HistoryBuilder::new();
        let p0 = b.add_proc("p");
        let q = b.add_proc("q");
        let p1 = b.add_proc("p");
        assert_eq!(p0, p1);
        assert_ne!(p0, q);
        let x0 = b.add_loc("x");
        let x1 = b.add_loc("x");
        assert_eq!(x0, x1);
    }

    #[test]
    fn interleaved_adds_group_by_processor() {
        let mut b = HistoryBuilder::new();
        b.write("p", "x", 1);
        b.write("q", "y", 2);
        b.read("p", "y", 0);
        let h = b.build();
        assert_eq!(h.proc_ops(ProcId(0)).len(), 2);
        assert_eq!(h.proc_ops(ProcId(1)).len(), 1);
        // p's ops come first and keep their relative order.
        assert!(h.ops()[0].is_write());
        assert!(h.ops()[1].is_read());
        h.validate().unwrap();
    }

    #[test]
    fn labels_preserved() {
        let mut b = HistoryBuilder::new();
        b.labeled_write("p", "s", 1);
        b.labeled_read("q", "s", 1);
        b.write("q", "x", 7);
        let h = b.build();
        assert!(h.ops()[0].is_release());
        assert!(h.ops()[1].is_acquire());
        assert!(!h.ops()[2].is_labeled());
    }

    #[test]
    fn empty_builder_builds_empty_history() {
        let h = HistoryBuilder::new().build();
        assert_eq!(h.num_ops(), 0);
        assert_eq!(h.num_procs(), 0);
        h.validate().unwrap();
    }
}

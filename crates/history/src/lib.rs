//! Execution histories for the shared-memory characterization framework of
//! Kohli, Neiger & Ahamad, *A Characterization of Scalable Shared Memories*
//! (ICPP 1993).
//!
//! The paper models a system as a finite set of processors interacting
//! through a shared memory of named locations. Each processor issues a
//! sequence of `read` and `write` operations; the per-processor sequences
//! form a *system execution history*. A memory consistency model is then
//! *characterized* by the set of system execution histories it admits.
//!
//! This crate provides the vocabulary types used everywhere else in the
//! workspace:
//!
//! * [`Operation`] — a single read or write, optionally *labeled* (the
//!   paper's synchronization operations used by release consistency),
//! * [`History`] — a system execution history: one operation sequence per
//!   processor, with interned processor and location names,
//! * [`HistoryBuilder`] — an ergonomic way to construct histories in code,
//! * [`litmus`] — a parser for the paper's `p: w(x)1 r(y)0` notation, plus a
//!   small suite format carrying per-model expectations,
//! * [`trace`] — a line-oriented arrival-order event stream (`p w(x)1`, one
//!   event per line) consumed by the incremental monitor,
//! * [`OpId`] — dense operation identifiers usable as bit-set indices by the
//!   relation engine.
//!
//! # Example
//!
//! Figure 1 of the paper (an execution admitted by TSO but not by SC):
//!
//! ```
//! use smc_history::litmus;
//!
//! let h = litmus::parse_history(
//!     "p: w(x)1 r(y)0\n\
//!      q: w(y)1 r(x)0",
//! )
//! .unwrap();
//! assert_eq!(h.num_procs(), 2);
//! assert_eq!(h.num_ops(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod history;
pub mod litmus;
mod op;
pub mod trace;

pub use builder::HistoryBuilder;
pub use history::{History, ProcHistory};
pub use op::{Label, Location, OpId, OpKind, Operation, ProcId, Value};

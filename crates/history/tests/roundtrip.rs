//! Round-trip properties of the litmus notation: any history renders to
//! text that parses back to an identical history, and suites survive the
//! same trip.
//!
//! Inputs are generated from a seeded [`smc_prng::SmallRng`] (the
//! workspace's dependency-free property-testing substrate); on failure the
//! case index identifies the offending input deterministically.

use smc_history::litmus::{parse_history, parse_suite};
use smc_history::{History, HistoryBuilder};
use smc_prng::SmallRng;

const PROCS: [&str; 4] = ["p", "q", "r", "s"];
const LOCS: [&str; 4] = ["x", "y", "number[0]", "c_2"];
const CASES: u64 = 256;

fn random_history(rng: &mut SmallRng) -> History {
    let mut b = HistoryBuilder::new();
    let threads = rng.gen_range(1..5usize);
    for proc in PROCS.iter().take(threads) {
        b.add_proc(proc);
        for _ in 0..rng.gen_range(0..5usize) {
            let loc = LOCS[rng.gen_range(0..LOCS.len())];
            let value = rng.gen_range(-3..100i64);
            match (rng.gen_bool(0.5), rng.gen_bool(0.5)) {
                (true, false) => b.write(proc, loc, value),
                (true, true) => b.labeled_write(proc, loc, value),
                (false, false) => b.read(proc, loc, value),
                (false, true) => b.labeled_read(proc, loc, value),
            };
        }
    }
    b.build()
}

/// Display → parse is the identity up to processor/location renumbering —
/// and since both sides intern in first-use order, it is the identity
/// exactly when every processor appears.
#[test]
fn display_parse_roundtrip() {
    for case in 0..CASES {
        let h = random_history(&mut SmallRng::seed_from_u64(case));
        let text = h.to_string();
        let back = parse_history(&text).unwrap();
        // Rendering the reparse reproduces the text (canonical form).
        assert_eq!(back.to_string(), text, "case {case}");
        // Same shape: op multisets per processor match.
        assert_eq!(back.num_ops(), h.num_ops(), "case {case}");
        assert_eq!(back.num_procs(), h.num_procs(), "case {case}");
        for (a, b) in h.ops().iter().zip(back.ops()) {
            assert_eq!(a.kind, b.kind, "case {case}");
            assert_eq!(a.value, b.value, "case {case}");
            assert_eq!(a.label, b.label, "case {case}");
        }
    }
}

/// Wrapping in a suite block round-trips too.
#[test]
fn suite_roundtrip() {
    for case in 0..CASES {
        let h = random_history(&mut SmallRng::seed_from_u64(case));
        let text = format!("test t \"generated\" {{\n{h}}} expect {{ SC: yes }}");
        let suite = parse_suite(&text).unwrap();
        assert_eq!(suite.len(), 1, "case {case}");
        assert_eq!(suite[0].history.to_string(), h.to_string(), "case {case}");
        assert_eq!(suite[0].expectation("SC"), Some(true), "case {case}");
    }
}

/// Reparsing a rendered history is idempotent: a second round trip
/// changes nothing (the parse of canonical text is a fixed point).
#[test]
fn reparse_is_fixed_point() {
    for case in 0..CASES {
        let h = random_history(&mut SmallRng::seed_from_u64(case));
        let once = parse_history(&h.to_string()).unwrap();
        let twice = parse_history(&once.to_string()).unwrap();
        assert_eq!(once, twice, "case {case}");
    }
}

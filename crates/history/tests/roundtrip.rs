//! Round-trip properties of the litmus notation: any history renders to
//! text that parses back to an identical history, and suites survive
//! serde.

use proptest::prelude::*;
use smc_history::litmus::{parse_history, parse_suite};
use smc_history::{History, HistoryBuilder};

const PROCS: [&str; 4] = ["p", "q", "r", "s"];
const LOCS: [&str; 4] = ["x", "y", "number[0]", "c_2"];

fn history_strategy() -> impl Strategy<Value = History> {
    proptest::collection::vec(
        proptest::collection::vec(
            (any::<bool>(), any::<bool>(), 0..LOCS.len(), -3i64..100),
            0..5,
        ),
        1..=4,
    )
    .prop_map(|threads| {
        let mut b = HistoryBuilder::new();
        for (t, ops) in threads.iter().enumerate() {
            b.add_proc(PROCS[t]);
            for &(is_write, labeled, loc, value) in ops {
                match (is_write, labeled) {
                    (true, false) => b.write(PROCS[t], LOCS[loc], value),
                    (true, true) => b.labeled_write(PROCS[t], LOCS[loc], value),
                    (false, false) => b.read(PROCS[t], LOCS[loc], value),
                    (false, true) => b.labeled_read(PROCS[t], LOCS[loc], value),
                }
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Display → parse is the identity up to processor/location
    /// renumbering — and since both sides intern in first-use order, it
    /// is the identity exactly when every processor appears.
    #[test]
    fn display_parse_roundtrip(h in history_strategy()) {
        let text = h.to_string();
        let back = parse_history(&text).unwrap();
        // Rendering the reparse reproduces the text (canonical form).
        prop_assert_eq!(back.to_string(), text);
        // Same shape: op multisets per processor match.
        prop_assert_eq!(back.num_ops(), h.num_ops());
        prop_assert_eq!(back.num_procs(), h.num_procs());
        for (a, b) in h.ops().iter().zip(back.ops()) {
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.value, b.value);
            prop_assert_eq!(a.label, b.label);
        }
    }

    /// Wrapping in a suite block round-trips too.
    #[test]
    fn suite_roundtrip(h in history_strategy()) {
        let text = format!("test t \"generated\" {{\n{h}}} expect {{ SC: yes }}");
        let suite = parse_suite(&text).unwrap();
        prop_assert_eq!(suite.len(), 1);
        prop_assert_eq!(suite[0].history.to_string(), h.to_string());
        prop_assert_eq!(suite[0].expectation("SC"), Some(true));
    }

    /// Serde JSON round-trips preserve equality.
    #[test]
    fn serde_roundtrip(h in history_strategy()) {
        let json = serde_json::to_string(&h).unwrap();
        let back: History = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, h);
    }
}

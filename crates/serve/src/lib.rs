//! Multi-session streaming admission server.
//!
//! `smc serve` turns the streaming [`Monitor`] into an always-on
//! network service: a TCP listener accepts line-oriented connections,
//! each carrying events for any number of independent *sessions*, and
//! every session is backed by its own incremental monitor over its own
//! trace. The protocol is plain text, one command per line:
//!
//! ```text
//! OPEN <sid> [model]     -> OK <sid> | ERR ...
//! EV <sid> <trace line>  -> (silent) | BUSY <sid> | ERR ...
//! @<sid> <trace line>    -> shorthand for EV
//! QUERY <sid>            -> VERDICT <sid> <events> SC=admitted ...
//! CLOSE <sid>            -> CLOSED <sid> <events> SC=admitted ...
//! SNAPSHOT <sid> <path>  -> SNAPSHOTTED <sid> <events> (session stays open)
//! RESUME <sid> <path>    -> RESUMED <sid> <events> (session resumes warm)
//! PING                   -> PONG
//! STATS                  -> STATS sessions=.. events=.. ...
//! SHUTDOWN               -> BYE (server stops)
//! ```
//!
//! Event lines reuse the `smc trace` grammar verbatim (headers
//! included), parsed by [`smc_history::trace::parse_trace_line`]; the
//! `@sid` framing is [`smc_history::trace::split_session_line`].
//!
//! # Architecture
//!
//! * **Acceptor + connection readers.** One acceptor thread accepts
//!   connections (bounded by `max_conns`); each connection gets a
//!   reader thread that parses command lines and replies inline.
//!   Sessions are server-scoped, not connection-scoped: any connection
//!   may feed or query any session, and dropping a connection leaves
//!   its sessions running (a second connection can issue out-of-band
//!   `QUERY`s while the first streams events).
//! * **Sharded session map.** Session ids hash into 16 independently
//!   locked shards (the same shape as the checker's `MemoCache`), so
//!   thousands of concurrent sessions never serialize on one lock.
//! * **Batched draining.** `EV` only parses the line into the
//!   session's inbox — a scratch [`Trace`] — and schedules the session
//!   on a run queue. A fixed pool of `workers` drain threads feeds
//!   whatever has accumulated to the session's monitor with one
//!   [`Monitor::feed_batch`] call, so batch size adapts to load: an
//!   idle server feeds per-event, a saturated one amortizes interning,
//!   table growth and restart-model settling over hundreds of events.
//! * **Backpressure.** A session's inbox holds at most `queue_cap`
//!   unfed events. Past that, `EV` replies `BUSY <sid>` and drops the
//!   event — a slow session costs bounded memory, never an unbounded
//!   queue. `QUERY`/`CLOSE` drain synchronously, so a client that
//!   paces a query every `queue_cap` events can never be refused.
//! * **Poisoning.** A malformed event line poisons only its session:
//!   the parse error is recorded, later events for that session are
//!   discarded, and `QUERY`/`CLOSE` report `error: <msg>` instead of
//!   verdicts. The connection — and every other session — stays up.
//! * **Lifecycle.** `SNAPSHOT` drains a session and writes its
//!   [`Monitor::checkpoint`] to a file; `RESUME` rebuilds a session
//!   from one, warm — its verdict stream continues byte-identically.
//!   With `--evict-dir` set, an `OPEN` that hits `max_sessions`
//!   checkpoints the least-recently-active idle session to disk and
//!   evicts it instead of refusing; a later command addressed to an
//!   evicted session resumes it transparently from the same directory.
//!
//! Verdict payloads list one `model=verdict` token per monitored
//! model, with `,first=N` appended for models whose first refuted
//! prefix is event-exact under batching (see
//! [`Monitor::is_event_exact`]); [`offline_payload`] computes the
//! byte-identical payload for a complete trace without a server, which
//! is what the load generator's verify mode and the integration tests
//! diff against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod loadgen;

use std::collections::{HashMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use smc_core::models;
use smc_core::spec::ModelSpec;
use smc_history::trace::{is_session_id, parse_trace_line, split_session_line, Trace};
use smc_history::{Label, OpKind};
use smc_monitor::{BatchEvent, Monitor, MonitorConfig};

/// Number of shards in the session map. Power of two; sixteen matches
/// the checker's `MemoCache`/`SharedFailedSet` sharding.
const SHARDS: usize = 16;

/// Poll interval for the non-blocking acceptor and the connection
/// readers' timeout, bounding shutdown latency.
const POLL: Duration = Duration::from_millis(20);

/// Tuning for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port (see
    /// [`Server::addr`]).
    pub addr: String,
    /// Drain worker threads. `0` disables asynchronous draining —
    /// events sit in the inbox until a `QUERY`/`CLOSE` drains them
    /// synchronously (deterministic, used to test backpressure).
    pub workers: usize,
    /// Admission cap: `OPEN` beyond this many live sessions is refused.
    pub max_sessions: usize,
    /// Concurrent connection cap; excess connections are refused.
    pub max_conns: usize,
    /// Per-session inbox bound in unfed events; `EV` past it gets
    /// `BUSY`.
    pub queue_cap: usize,
    /// Models monitored by a session when `OPEN` names none.
    pub models: Vec<ModelSpec>,
    /// Monitor tuning template, cloned per session. The clone shares
    /// the template's memo cache, so restart-model re-checks memoize
    /// across sessions.
    pub monitor: MonitorConfig,
    /// Directory for checkpoint-to-disk eviction. When set, an `OPEN`
    /// (or transparent resume) that finds the server full evicts the
    /// least-recently-active idle session to `<dir>/<sid>-<hash>.ckpt`
    /// instead of refusing, and a command addressed to an evicted
    /// session resumes it from the same file. `None` disables eviction.
    pub evict_dir: Option<PathBuf>,
}

/// Default per-engine frontier state budget for server sessions.
///
/// The offline monitor defaults to `1 << 20` states — fine for one
/// trace, ruinous for thousands of concurrent sessions (a 64-event
/// aliased trace can reach ~24k frontier states ≈ 5 MB *per session*,
/// and per-event append cost grows with the state count). Capping at
/// 1024 keeps typical litmus-scale sessions fully event-exact while an
/// engine that overflows falls back to batch-end rechecks: bounded
/// memory, and measured ~20× higher sustained throughput at 1024
/// sessions. Override with `--max-states`.
pub const DEFAULT_SESSION_MAX_STATES: usize = 1024;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().saturating_sub(2).max(1))
                .unwrap_or(2),
            max_sessions: 4096,
            max_conns: 256,
            queue_cap: 1024,
            models: models::lattice_models(),
            monitor: MonitorConfig {
                max_frontier_states: DEFAULT_SESSION_MAX_STATES,
                ..MonitorConfig::default()
            },
            evict_dir: None,
        }
    }
}

/// Parsed-but-unfed events plus the session's stream bookkeeping.
/// Guarded by its own lock so `EV` (parse + append) never waits on a
/// drain in progress; lock order is monitor before inbox.
struct Inbox {
    /// Scratch trace the wire lines parse into; `fed..len` is the
    /// pending queue.
    scratch: Trace,
    /// Events of `scratch` already fed to the monitor.
    fed: usize,
    /// Procs of `scratch` already declared to the monitor.
    declared_procs: usize,
    /// Locs of `scratch` already declared to the monitor.
    declared_locs: usize,
    /// Session is queued on the run queue or mid-drain.
    scheduled: bool,
    /// First parse error; set once, never cleared.
    poisoned: Option<String>,
    /// `CLOSE` ran; late `EV`s racing the map removal get an error.
    closed: bool,
    /// Per-session line number for parse-error messages.
    line_no: usize,
    /// Per-session byte offset for parse-error messages.
    offset: usize,
}

/// One monitored session. The id lives in the shard map key; replies
/// echo the id the client sent.
struct Session {
    inbox: Mutex<Inbox>,
    mon: Mutex<Monitor>,
    /// Logical activity tick (from [`Shared::tick`]); the eviction scan
    /// picks the smallest.
    last_active: AtomicU64,
}

impl Session {
    fn new(models: Vec<ModelSpec>, cfg: MonitorConfig) -> Arc<Session> {
        Session::with_monitor(Monitor::new(models, cfg))
    }

    /// Wrap an already-built monitor (the `RESUME` path).
    fn with_monitor(mon: Monitor) -> Arc<Session> {
        Arc::new(Session {
            inbox: Mutex::new(Inbox {
                scratch: Trace::new(),
                fed: 0,
                declared_procs: 0,
                declared_locs: 0,
                scheduled: false,
                poisoned: None,
                closed: false,
                line_no: 0,
                offset: 0,
            }),
            mon: Mutex::new(mon),
            last_active: AtomicU64::new(0),
        })
    }
}

/// State shared by the acceptor, connection readers and drain workers.
struct Shared {
    cfg: ServeConfig,
    shards: Vec<Mutex<HashMap<String, Arc<Session>>>>,
    runq: Mutex<VecDeque<Arc<Session>>>,
    runq_cv: Condvar,
    shutdown: AtomicBool,
    open_sessions: AtomicUsize,
    peak_sessions: AtomicUsize,
    conns: AtomicUsize,
    events_fed: AtomicU64,
    busy: AtomicU64,
    poisoned: AtomicU64,
    queries: AtomicU64,
    /// Logical clock stamping session activity for LRU eviction.
    tick: AtomicU64,
    snapshots: AtomicU64,
    resumes: AtomicU64,
    evictions: AtomicU64,
    /// Lifecycle counters of already-closed sessions; live sessions are
    /// summed on demand by [`Shared::lifecycle_totals`].
    closed_joins: AtomicU64,
    closed_retires: AtomicU64,
    closed_folds: AtomicU64,
    closed_windows: AtomicU64,
}

impl Shared {
    fn shard(&self, sid: &str) -> &Mutex<HashMap<String, Arc<Session>>> {
        // FNV-1a; only distribution matters.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in sid.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) % SHARDS]
    }

    fn session(&self, sid: &str) -> Option<Arc<Session>> {
        self.shard(sid).lock().unwrap().get(sid).cloned()
    }

    /// Stamp `s` as the most recently active session.
    fn touch(&self, s: &Session) {
        s.last_active.store(
            self.tick.fetch_add(1, Ordering::Relaxed) + 1,
            Ordering::Relaxed,
        );
    }

    /// Fold a closing session's lifecycle counters into the totals.
    fn absorb_closed(&self, mon: &Monitor) {
        let t = mon.totals();
        self.closed_joins.fetch_add(t.joins, Ordering::Relaxed);
        self.closed_retires.fetch_add(t.retires, Ordering::Relaxed);
        self.closed_folds.fetch_add(t.folds, Ordering::Relaxed);
        self.closed_windows
            .fetch_add(t.windows_sealed, Ordering::Relaxed);
    }

    /// `(joins, retires, folds, windows_sealed)` over closed and live
    /// sessions. Locks each live monitor briefly.
    fn lifecycle_totals(&self) -> (u64, u64, u64, u64) {
        let (mut j, mut r, mut f, mut w) = (
            self.closed_joins.load(Ordering::Relaxed),
            self.closed_retires.load(Ordering::Relaxed),
            self.closed_folds.load(Ordering::Relaxed),
            self.closed_windows.load(Ordering::Relaxed),
        );
        for shard in &self.shards {
            let sessions: Vec<Arc<Session>> = shard.lock().unwrap().values().cloned().collect();
            for s in sessions {
                let t = s.mon.lock().unwrap().totals();
                j += t.joins;
                r += t.retires;
                f += t.folds;
                w += t.windows_sealed;
            }
        }
        (j, r, f, w)
    }

    fn stats_line(&self) -> String {
        let (hits, misses) = self
            .cfg
            .monitor
            .check
            .memo
            .as_ref()
            .map(|m| {
                let s = m.stats();
                (s.hits, s.misses)
            })
            .unwrap_or((0, 0));
        let (joins, retires, folds, windows) = self.lifecycle_totals();
        format!(
            "STATS sessions={} peak={} conns={} events={} busy={} poisoned={} queries={} \
             memo_hits={hits} memo_misses={misses} snapshots={} resumes={} evictions={} \
             joins={joins} retires={retires} folds={folds} windows={windows}",
            self.open_sessions.load(Ordering::Relaxed),
            self.peak_sessions.load(Ordering::Relaxed),
            self.conns.load(Ordering::Relaxed),
            self.events_fed.load(Ordering::Relaxed),
            self.busy.load(Ordering::Relaxed),
            self.poisoned.load(Ordering::Relaxed),
            self.queries.load(Ordering::Relaxed),
            self.snapshots.load(Ordering::Relaxed),
            self.resumes.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

/// Verdict payload for the monitor's current prefix: the event count
/// followed by one `model=verdict` token per model, with `,first=N`
/// for models whose first refuted prefix is event-exact.
pub fn verdict_payload(mon: &Monitor) -> String {
    use std::fmt::Write;
    let mut s = mon.num_events().to_string();
    for (i, m) in mon.models().iter().enumerate() {
        let _ = write!(s, " {}={}", m.name, mon.verdicts()[i].word());
        if mon.is_event_exact(i) {
            if let Some(n) = mon.first_violation(i) {
                let _ = write!(s, ",first={n}");
            }
        }
    }
    s
}

/// The payload a server session would report after ingesting `t`
/// whole: feed offline, format with [`verdict_payload`]. The serve
/// equivalence tests and the load generator's verify mode diff server
/// payloads against this.
pub fn offline_payload(models: &[ModelSpec], cfg: &MonitorConfig, t: &Trace) -> String {
    let mut mon = Monitor::new(models.to_vec(), cfg.clone());
    mon.feed_trace(t);
    verdict_payload(&mon)
}

/// Feed everything pending in the session's inbox to its monitor and
/// return the monitor guard (still locked, so the caller can read
/// verdicts of exactly the drained prefix). Safe to race with other
/// drains: the monitor lock serializes them and `fed` marks events as
/// taken under the inbox lock.
fn drain_locked<'a>(s: &'a Session, shared: &Shared) -> MutexGuard<'a, Monitor> {
    let mut mon = s.mon.lock().unwrap();
    loop {
        // Take the pending slice out under the inbox lock, feed it
        // after release: EV keeps appending while the batch feeds.
        let batch: Vec<(String, OpKind, String, i64, Label)> = {
            let mut inbox = s.inbox.lock().unwrap();
            for i in inbox.declared_procs..inbox.scratch.num_procs() {
                mon.declare_proc(&inbox.scratch.proc_names()[i]);
            }
            inbox.declared_procs = inbox.scratch.num_procs();
            for i in inbox.declared_locs..inbox.scratch.num_locs() {
                mon.declare_loc(&inbox.scratch.loc_names()[i]);
            }
            inbox.declared_locs = inbox.scratch.num_locs();
            if inbox.fed == inbox.scratch.len() {
                inbox.scheduled = false;
                return mon;
            }
            let from = inbox.fed;
            inbox.fed = inbox.scratch.len();
            inbox.scratch.events()[from..]
                .iter()
                .map(|e| {
                    (
                        inbox.scratch.proc_name(e.proc).to_owned(),
                        e.kind,
                        inbox.scratch.loc_name(e.loc).to_owned(),
                        e.value.0,
                        e.label,
                    )
                })
                .collect()
        };
        let refs: Vec<BatchEvent<'_>> = batch
            .iter()
            .map(|(p, k, l, v, lab)| (p.as_str(), *k, l.as_str(), *v, *lab))
            .collect();
        mon.feed_batch(&refs);
        shared
            .events_fed
            .fetch_add(refs.len() as u64, Ordering::Relaxed);
    }
}

/// What a command line asks the connection loop to do.
enum Action {
    /// No reply (successful `EV`, blank line, comment).
    Silent,
    /// Write this line back.
    Reply(String),
    /// Write the line, then stop the whole server.
    Shutdown(String),
}

/// Checkpoint file an evicted session `sid` lives in: the id sanitized
/// for the filesystem plus an FNV-1a hash so distinct ids never share a
/// file.
fn evict_path(dir: &Path, sid: &str) -> PathBuf {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in sid.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let safe: String = sid
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("{safe}-{h:016x}.ckpt"))
}

/// Reserve one session slot against `max_sessions`, evicting an idle
/// session to disk if the server is full and eviction is enabled.
/// Returns `false` (with the reservation released) when no capacity can
/// be made.
fn reserve_slot(shared: &Shared) -> bool {
    loop {
        let live = shared.open_sessions.fetch_add(1, Ordering::Relaxed);
        if live < shared.cfg.max_sessions {
            shared.peak_sessions.fetch_max(live + 1, Ordering::Relaxed);
            return true;
        }
        shared.open_sessions.fetch_sub(1, Ordering::Relaxed);
        if !try_evict(shared) {
            return false;
        }
    }
}

/// Evict the least-recently-active idle session to the eviction
/// directory, freeing one slot. Returns whether a session was evicted.
fn try_evict(shared: &Shared) -> bool {
    let Some(dir) = shared.cfg.evict_dir.as_deref() else {
        return false;
    };
    // Scan for the oldest idle candidate: fully drained, unscheduled,
    // healthy. try_lock so a busy session never blocks the scan.
    let mut best: Option<(u64, String, Arc<Session>)> = None;
    for shard in &shared.shards {
        for (sid, s) in shard.lock().unwrap().iter() {
            let Ok(inbox) = s.inbox.try_lock() else {
                continue;
            };
            let idle = !inbox.scheduled
                && inbox.fed == inbox.scratch.len()
                && inbox.poisoned.is_none()
                && !inbox.closed;
            drop(inbox);
            if !idle {
                continue;
            }
            let t = s.last_active.load(Ordering::Relaxed);
            if best.as_ref().is_none_or(|(bt, _, _)| t < *bt) {
                best = Some((t, sid.clone(), Arc::clone(s)));
            }
        }
    }
    let Some((_, sid, s)) = best else {
        return false;
    };
    // Claim it by removing it from the map; new commands for the id now
    // miss and go down the transparent-resume path.
    if shared.shard(&sid).lock().unwrap().remove(&sid).is_none() {
        return false;
    }
    let mon = drain_locked(&s, shared);
    s.inbox.lock().unwrap().closed = true;
    let written = std::fs::create_dir_all(dir).is_ok()
        && smc_core::binfmt::write_file(&evict_path(dir, &sid), &mon.checkpoint_bytes()).is_ok();
    drop(mon);
    if !written {
        // Undo: the session stays resident rather than losing state.
        s.inbox.lock().unwrap().closed = false;
        shared.shard(&sid).lock().unwrap().insert(sid, s);
        return false;
    }
    shared.open_sessions.fetch_sub(1, Ordering::Relaxed);
    shared.evictions.fetch_add(1, Ordering::Relaxed);
    true
}

/// Rebuild a session from checkpoint bytes and insert it under `sid`.
/// Returns the restored event count.
fn resume_session(shared: &Shared, sid: &str, bytes: &[u8]) -> Result<usize, String> {
    // The checkpoint names its models; resolve them by name so a
    // single-model session resumes as itself. Unresolvable names fall
    // back to the server's default set — `restore` still validates.
    let specs = smc_monitor::ckpt::peek_models(bytes)
        .ok()
        .and_then(|names| {
            names
                .iter()
                .map(|n| models::by_name(n))
                .collect::<Option<Vec<ModelSpec>>>()
        })
        .unwrap_or_else(|| shared.cfg.models.clone());
    let mon = Monitor::restore_bytes(bytes, specs, shared.cfg.monitor.clone())?;
    if !reserve_slot(shared) {
        return Err(format!("full max-sessions={}", shared.cfg.max_sessions));
    }
    let mut shard = shared.shard(sid).lock().unwrap();
    if shard.contains_key(sid) {
        drop(shard);
        shared.open_sessions.fetch_sub(1, Ordering::Relaxed);
        return Err(format!("session exists `{sid}`"));
    }
    let events = mon.num_events();
    let s = Session::with_monitor(mon);
    shared.touch(&s);
    shard.insert(sid.to_owned(), s);
    shared.resumes.fetch_add(1, Ordering::Relaxed);
    Ok(events)
}

/// Look up a session, transparently resuming it from the eviction
/// directory on a miss.
fn find_session(shared: &Shared, sid: &str) -> Option<Arc<Session>> {
    if let Some(s) = shared.session(sid) {
        return Some(s);
    }
    let dir = shared.cfg.evict_dir.as_deref()?;
    let path = evict_path(dir, sid);
    let bytes = std::fs::read(&path).ok()?;
    match resume_session(shared, sid, &bytes) {
        Ok(_) => {
            let _ = std::fs::remove_file(&path);
            shared.session(sid)
        }
        Err(_) => None,
    }
}

fn cmd_open(shared: &Shared, sid: &str, selector: Option<&str>) -> Action {
    if !is_session_id(sid) {
        return Action::Reply(format!("ERR invalid session id `{sid}`"));
    }
    let session_models = match selector {
        None | Some("all") => shared.cfg.models.clone(),
        Some(name) => match models::by_name(name) {
            Some(m) => vec![m],
            None => return Action::Reply(format!("ERR unknown model `{name}`")),
        },
    };
    // Reserve a slot before touching the map so concurrent OPENs on
    // different shards cannot overshoot the cap.
    if !reserve_slot(shared) {
        return Action::Reply(format!("ERR full max-sessions={}", shared.cfg.max_sessions));
    }
    let mut shard = shared.shard(sid).lock().unwrap();
    if shard.contains_key(sid) {
        drop(shard);
        shared.open_sessions.fetch_sub(1, Ordering::Relaxed);
        return Action::Reply(format!("ERR session exists `{sid}`"));
    }
    let s = Session::new(session_models, shared.cfg.monitor.clone());
    shared.touch(&s);
    shard.insert(sid.to_owned(), s);
    drop(shard);
    // A fresh OPEN supersedes any stale evicted checkpoint of the id.
    if let Some(dir) = shared.cfg.evict_dir.as_deref() {
        let _ = std::fs::remove_file(evict_path(dir, sid));
    }
    Action::Reply(format!("OK {sid}"))
}

fn cmd_snapshot(shared: &Shared, sid: &str, path: &str) -> Action {
    let Some(s) = find_session(shared, sid) else {
        return Action::Reply(format!("ERR unknown session `{sid}`"));
    };
    shared.touch(&s);
    let mon = drain_locked(&s, shared);
    if let Some(msg) = s.inbox.lock().unwrap().poisoned.clone() {
        return Action::Reply(format!("ERR session `{sid}` poisoned: {msg}"));
    }
    match smc_core::binfmt::write_file(Path::new(path), &mon.checkpoint_bytes()) {
        Ok(()) => {
            shared.snapshots.fetch_add(1, Ordering::Relaxed);
            Action::Reply(format!("SNAPSHOTTED {sid} {}", mon.num_events()))
        }
        Err(e) => Action::Reply(format!("ERR snapshot `{path}`: {e}")),
    }
}

fn cmd_resume(shared: &Shared, sid: &str, path: &str) -> Action {
    if !is_session_id(sid) {
        return Action::Reply(format!("ERR invalid session id `{sid}`"));
    }
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return Action::Reply(format!("ERR resume `{path}`: {e}")),
    };
    match resume_session(shared, sid, &bytes) {
        Ok(events) => Action::Reply(format!("RESUMED {sid} {events}")),
        Err(e) => Action::Reply(format!("ERR {e}")),
    }
}

fn cmd_ev(shared: &Arc<Shared>, sid: &str, rest: &str) -> Action {
    let Some(s) = find_session(shared, sid) else {
        return Action::Reply(format!("ERR unknown session `{sid}`"));
    };
    shared.touch(&s);
    let schedule = {
        let mut inbox = s.inbox.lock().unwrap();
        if inbox.closed {
            return Action::Reply(format!("ERR unknown session `{sid}`"));
        }
        if inbox.poisoned.is_some() {
            // The session is already failed; swallow the rest of its
            // stream so the connection (and its other sessions) go on.
            return Action::Silent;
        }
        if inbox.scratch.len() - inbox.fed >= shared.cfg.queue_cap {
            shared.busy.fetch_add(1, Ordering::Relaxed);
            return Action::Reply(format!("BUSY {sid}"));
        }
        inbox.line_no += 1;
        let (line_no, offset) = (inbox.line_no, inbox.offset);
        if let Err(e) = parse_trace_line(&mut inbox.scratch, rest, line_no, offset) {
            inbox.poisoned = Some(e.to_string());
            shared.poisoned.fetch_add(1, Ordering::Relaxed);
        }
        inbox.offset += rest.len() + 1;
        let pending = inbox.scratch.len() - inbox.fed;
        if pending > 0 && !inbox.scheduled && shared.cfg.workers > 0 {
            inbox.scheduled = true;
            true
        } else {
            false
        }
    };
    if schedule {
        shared.runq.lock().unwrap().push_back(s);
        shared.runq_cv.notify_one();
    }
    Action::Silent
}

fn cmd_query(shared: &Shared, sid: &str) -> Action {
    let Some(s) = find_session(shared, sid) else {
        return Action::Reply(format!("ERR unknown session `{sid}`"));
    };
    shared.touch(&s);
    shared.queries.fetch_add(1, Ordering::Relaxed);
    let mon = drain_locked(&s, shared);
    let poisoned = s.inbox.lock().unwrap().poisoned.clone();
    let payload = match poisoned {
        Some(msg) => format!("{} error: {msg}", mon.num_events()),
        None => verdict_payload(&mon),
    };
    Action::Reply(format!("VERDICT {sid} {payload}"))
}

fn cmd_close(shared: &Shared, sid: &str) -> Action {
    let removed = shared.shard(sid).lock().unwrap().remove(sid);
    let s = match removed {
        Some(s) => s,
        // An evicted session can still be closed: resume, then retry
        // the removal (find_session inserted it into the map).
        None => match find_session(shared, sid) {
            Some(_) => match shared.shard(sid).lock().unwrap().remove(sid) {
                Some(s) => s,
                None => return Action::Reply(format!("ERR unknown session `{sid}`")),
            },
            None => return Action::Reply(format!("ERR unknown session `{sid}`")),
        },
    };
    let mon = drain_locked(&s, shared);
    let poisoned = {
        let mut inbox = s.inbox.lock().unwrap();
        inbox.closed = true;
        inbox.poisoned.clone()
    };
    shared.absorb_closed(&mon);
    shared.open_sessions.fetch_sub(1, Ordering::Relaxed);
    let payload = match poisoned {
        Some(msg) => format!("{} error: {msg}", mon.num_events()),
        None => verdict_payload(&mon),
    };
    Action::Reply(format!("CLOSED {sid} {payload}"))
}

/// Dispatch one protocol line.
fn handle_line(shared: &Arc<Shared>, line: &str) -> Action {
    let line = line.trim_end_matches('\r');
    // `@sid <event>` shorthand outranks keyword parsing so session ids
    // can never collide with command words.
    if let Some((sid, rest)) = split_session_line(line) {
        return cmd_ev(shared, sid, rest);
    }
    let trimmed = line.trim_start();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Action::Silent;
    }
    let (word, rest) = match trimmed.split_once(char::is_whitespace) {
        Some((w, r)) => (w, r.trim_start()),
        None => (trimmed, ""),
    };
    match word {
        "OPEN" => {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some(sid), sel, None) => cmd_open(shared, sid, sel),
                _ => Action::Reply("ERR usage: OPEN <sid> [model]".into()),
            }
        }
        "EV" => match rest.split_once(char::is_whitespace) {
            Some((sid, ev)) => cmd_ev(shared, sid, ev),
            None if !rest.is_empty() => cmd_ev(shared, rest, ""),
            None => Action::Reply("ERR usage: EV <sid> <event>".into()),
        },
        "QUERY" => match rest.split_whitespace().next() {
            Some(sid) => cmd_query(shared, sid),
            None => Action::Reply("ERR usage: QUERY <sid>".into()),
        },
        "CLOSE" => match rest.split_whitespace().next() {
            Some(sid) => cmd_close(shared, sid),
            None => Action::Reply("ERR usage: CLOSE <sid>".into()),
        },
        "SNAPSHOT" => {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some(sid), Some(path), None) => cmd_snapshot(shared, sid, path),
                _ => Action::Reply("ERR usage: SNAPSHOT <sid> <path>".into()),
            }
        }
        "RESUME" => {
            let mut it = rest.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some(sid), Some(path), None) => cmd_resume(shared, sid, path),
                _ => Action::Reply("ERR usage: RESUME <sid> <path>".into()),
            }
        }
        "PING" => Action::Reply("PONG".into()),
        "STATS" => Action::Reply(shared.stats_line()),
        "SHUTDOWN" => Action::Shutdown("BYE".into()),
        _ => Action::Reply(format!("ERR unknown command `{word}`")),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let next = {
            let mut q = shared.runq.lock().unwrap();
            loop {
                if let Some(s) = q.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = shared.runq_cv.wait(q).unwrap();
            }
        };
        match next {
            Some(s) => drop(drain_locked(&s, shared)),
            None => return,
        }
    }
}

fn conn_loop(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let Ok(write_half) = stream.try_clone() else {
        shared.conns.fetch_sub(1, Ordering::Relaxed);
        return;
    };
    let mut out = std::io::BufWriter::new(write_half);
    let mut stream = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        };
        pending.extend_from_slice(&buf[..n]);
        let mut start = 0usize;
        while let Some(nl) = pending[start..].iter().position(|&b| b == b'\n') {
            let line = &pending[start..start + nl];
            start += nl + 1;
            let action = match std::str::from_utf8(line) {
                Ok(text) => handle_line(&shared, text),
                Err(_) => Action::Reply("ERR invalid utf-8".into()),
            };
            match action {
                Action::Silent => {}
                Action::Reply(r) => {
                    if out.write_all(r.as_bytes()).is_err()
                        || out.write_all(b"\n").is_err()
                        || out.flush().is_err()
                    {
                        break 'conn;
                    }
                }
                Action::Shutdown(r) => {
                    let _ = out.write_all(r.as_bytes());
                    let _ = out.write_all(b"\n");
                    let _ = out.flush();
                    shared.shutdown.store(true, Ordering::Release);
                    shared.runq_cv.notify_all();
                    break 'conn;
                }
            }
        }
        pending.drain(..start);
    }
    shared.conns.fetch_sub(1, Ordering::Relaxed);
}

/// A running admission server. Dropping the handle does **not** stop
/// it — call [`Server::shutdown`] (or send `SHUTDOWN` over a
/// connection and [`Server::wait`]).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl Server {
    /// Bind and start accepting. Returns once the listener is live.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let workers_n = cfg.workers;
        let shared = Arc::new(Shared {
            cfg,
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            runq: Mutex::new(VecDeque::new()),
            runq_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            open_sessions: AtomicUsize::new(0),
            peak_sessions: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            events_fed: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            resumes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            closed_joins: AtomicU64::new(0),
            closed_retires: AtomicU64::new(0),
            closed_folds: AtomicU64::new(0),
            closed_windows: AtomicU64::new(0),
        });
        let conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let workers = (0..workers_n)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::spawn(move || loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        // Reap finished readers so the handle list stays
                        // proportional to live connections.
                        let mut threads = conn_threads.lock().unwrap();
                        threads.retain(|t| !t.is_finished());
                        if shared.conns.load(Ordering::Relaxed) >= shared.cfg.max_conns {
                            let _ = stream.write_all(b"ERR too many connections\n");
                            continue;
                        }
                        shared.conns.fetch_add(1, Ordering::Relaxed);
                        let shared = Arc::clone(&shared);
                        threads.push(std::thread::spawn(move || conn_loop(stream, shared)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => return,
                }
            })
        };
        Ok(Server {
            shared,
            addr,
            acceptor: Some(acceptor),
            workers,
            conn_threads,
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// One-line server counters, same shape as the `STATS` reply.
    pub fn stats_line(&self) -> String {
        self.shared.stats_line()
    }

    /// True until `SHUTDOWN` arrives or [`Server::shutdown`] runs.
    pub fn running(&self) -> bool {
        !self.shared.shutdown.load(Ordering::Acquire)
    }

    fn join_all(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.runq_cv.notify_all();
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
        for t in self.conn_threads.lock().unwrap().drain(..) {
            let _ = t.join();
        }
    }

    /// Stop accepting, finish queued drains, join every thread.
    pub fn shutdown(mut self) {
        self.join_all();
    }

    /// Block until a client sends `SHUTDOWN`, then join every thread.
    pub fn wait(mut self) {
        while self.running() {
            std::thread::sleep(POLL);
        }
        self.join_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smc_history::trace::{emit_trace, parse_trace};
    use std::io::{BufRead, BufReader, Write};

    fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    }

    fn roundtrip(r: &mut BufReader<TcpStream>, w: &mut TcpStream, line: &str) -> String {
        writeln!(w, "{line}").unwrap();
        let mut reply = String::new();
        r.read_line(&mut reply).unwrap();
        reply.trim_end().to_owned()
    }

    fn test_server(workers: usize, queue_cap: usize) -> Server {
        Server::start(ServeConfig {
            workers,
            queue_cap,
            models: vec![models::sc(), models::causal()],
            ..ServeConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn open_feed_query_close_matches_offline() {
        let server = test_server(2, 1024);
        let (mut r, mut w) = connect(server.addr());
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN s1"), "OK s1");
        let t = parse_trace("p w(x)1\nq w(y)1\np r(y)0\nq r(x)0\n").unwrap();
        for line in emit_trace(&t).lines() {
            writeln!(w, "@s1 {line}").unwrap();
        }
        let cfg = ServeConfig::default();
        let want = offline_payload(&[models::sc(), models::causal()], &cfg.monitor, &t);
        let got = roundtrip(&mut r, &mut w, "QUERY s1");
        assert_eq!(got, format!("VERDICT s1 {want}"));
        let got = roundtrip(&mut r, &mut w, "CLOSE s1");
        assert_eq!(got, format!("CLOSED s1 {want}"));
        // Closed sessions are gone, and their slot is reusable.
        assert!(roundtrip(&mut r, &mut w, "QUERY s1").starts_with("ERR unknown session"));
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN s1"), "OK s1");
        server.shutdown();
    }

    #[test]
    fn bad_line_poisons_only_its_session() {
        let server = test_server(2, 1024);
        let (mut r, mut w) = connect(server.addr());
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN good"), "OK good");
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN bad"), "OK bad");
        writeln!(w, "@good p w(x)1").unwrap();
        writeln!(w, "@bad p w(x)1").unwrap();
        writeln!(w, "@bad p frobnicate").unwrap();
        writeln!(w, "@bad p w(x)2").unwrap();
        let got = roundtrip(&mut r, &mut w, "QUERY bad");
        assert!(got.starts_with("VERDICT bad 1 error:"), "{got}");
        // The poisoned session keeps failing, the connection and the
        // healthy session are untouched.
        let got = roundtrip(&mut r, &mut w, "QUERY good");
        assert!(got.starts_with("VERDICT good 1 SC=admitted"), "{got}");
        assert_eq!(roundtrip(&mut r, &mut w, "PING"), "PONG");
        server.shutdown();
    }

    #[test]
    fn backpressure_is_busy_not_unbounded() {
        // workers: 0 makes draining purely synchronous, so the third
        // event must find the two-slot inbox full.
        let server = test_server(0, 2);
        let (mut r, mut w) = connect(server.addr());
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN s"), "OK s");
        writeln!(w, "@s p w(x)1").unwrap();
        writeln!(w, "@s p w(x)2").unwrap();
        let got = roundtrip(&mut r, &mut w, "@s p w(x)3");
        assert_eq!(got, "BUSY s");
        // QUERY drains synchronously and frees the queue again.
        let got = roundtrip(&mut r, &mut w, "QUERY s");
        assert!(got.starts_with("VERDICT s 2 "), "{got}");
        writeln!(w, "@s p w(x)3").unwrap();
        let got = roundtrip(&mut r, &mut w, "QUERY s");
        assert!(got.starts_with("VERDICT s 3 "), "{got}");
        server.shutdown();
    }

    #[test]
    fn max_sessions_caps_admission() {
        let server = Server::start(ServeConfig {
            max_sessions: 2,
            models: vec![models::sc()],
            ..ServeConfig::default()
        })
        .unwrap();
        let (mut r, mut w) = connect(server.addr());
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN a"), "OK a");
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN b"), "OK b");
        assert!(roundtrip(&mut r, &mut w, "OPEN c").starts_with("ERR full"));
        // Closing one session frees its slot.
        assert!(roundtrip(&mut r, &mut w, "CLOSE a").starts_with("CLOSED a"));
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN c"), "OK c");
        server.shutdown();
    }

    #[test]
    fn out_of_band_query_from_second_connection() {
        let server = test_server(2, 1024);
        let (mut r1, mut w1) = connect(server.addr());
        assert_eq!(roundtrip(&mut r1, &mut w1, "OPEN s"), "OK s");
        writeln!(w1, "@s p w(x)1").unwrap();
        w1.flush().unwrap();
        // A different connection sees the same session.
        let (mut r2, mut w2) = connect(server.addr());
        let got = roundtrip(&mut r2, &mut w2, "QUERY s");
        assert!(got.starts_with("VERDICT s 1 "), "{got}");
        // Dropping the feeder connection leaves the session alive.
        drop((r1, w1));
        let got = roundtrip(&mut r2, &mut w2, "QUERY s");
        assert!(got.starts_with("VERDICT s 1 "), "{got}");
        server.shutdown();
    }

    #[test]
    fn snapshot_and_resume_continue_byte_identically() {
        let server = test_server(2, 1024);
        let (mut r, mut w) = connect(server.addr());
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN s1"), "OK s1");
        writeln!(w, "@s1 p w(x)1").unwrap();
        writeln!(w, "@s1 q r(x)1").unwrap();
        let dir = std::env::temp_dir().join(format!("smc-serve-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s1.ckpt");
        let got = roundtrip(&mut r, &mut w, &format!("SNAPSHOT s1 {}", path.display()));
        assert_eq!(got, "SNAPSHOTTED s1 2");
        // The snapshot leaves the session open; close it, resume the
        // checkpoint under a new id, and keep streaming.
        assert!(roundtrip(&mut r, &mut w, "CLOSE s1").starts_with("CLOSED s1 2 "));
        let got = roundtrip(&mut r, &mut w, &format!("RESUME s2 {}", path.display()));
        assert_eq!(got, "RESUMED s2 2");
        writeln!(w, "@s2 q r(x)0").unwrap();
        // The resumed stream must report exactly what an uninterrupted
        // offline monitor reports for the whole trace.
        let t = parse_trace("p w(x)1\nq r(x)1\nq r(x)0\n").unwrap();
        let cfg = ServeConfig::default();
        let want = offline_payload(&[models::sc(), models::causal()], &cfg.monitor, &t);
        let got = roundtrip(&mut r, &mut w, "QUERY s2");
        assert_eq!(got, format!("VERDICT s2 {want}"));
        let stats = roundtrip(&mut r, &mut w, "STATS");
        assert!(stats.contains("snapshots=1"), "{stats}");
        assert!(stats.contains("resumes=1"), "{stats}");
        std::fs::remove_dir_all(&dir).ok();
        server.shutdown();
    }

    #[test]
    fn resume_rejects_garbage_and_bad_paths() {
        let server = test_server(1, 1024);
        let (mut r, mut w) = connect(server.addr());
        let got = roundtrip(&mut r, &mut w, "RESUME s /nonexistent/path.ckpt");
        assert!(got.starts_with("ERR resume"), "{got}");
        let dir = std::env::temp_dir().join(format!("smc-serve-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.ckpt");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let got = roundtrip(&mut r, &mut w, &format!("RESUME s {}", path.display()));
        assert!(got.starts_with("ERR"), "{got}");
        std::fs::remove_dir_all(&dir).ok();
        server.shutdown();
    }

    #[test]
    fn eviction_spills_idle_sessions_and_resumes_transparently() {
        let dir = std::env::temp_dir().join(format!("smc-serve-evict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let server = Server::start(ServeConfig {
            max_sessions: 2,
            models: vec![models::sc()],
            evict_dir: Some(dir.clone()),
            ..ServeConfig::default()
        })
        .unwrap();
        let (mut r, mut w) = connect(server.addr());
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN a"), "OK a");
        writeln!(w, "@a p w(x)1").unwrap();
        // QUERY drains `a` so it is idle (and the LRU once b/c arrive).
        assert!(roundtrip(&mut r, &mut w, "QUERY a").starts_with("VERDICT a 1 "));
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN b"), "OK b");
        // The server is full, but eviction spills `a` to disk instead
        // of refusing the third session.
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN c"), "OK c");
        let stats = roundtrip(&mut r, &mut w, "STATS");
        assert!(stats.contains("evictions=1"), "{stats}");
        assert!(stats.contains("sessions=2"), "{stats}");
        // Addressing the evicted session resumes it transparently —
        // with its one event intact — evicting another idle session to
        // make room.
        let got = roundtrip(&mut r, &mut w, "QUERY a");
        assert!(got.starts_with("VERDICT a 1 "), "{got}");
        let stats = roundtrip(&mut r, &mut w, "STATS");
        assert!(stats.contains("resumes=1"), "{stats}");
        std::fs::remove_dir_all(&dir).ok();
        server.shutdown();
    }

    #[test]
    fn protocol_errors_and_stats() {
        let server = test_server(1, 1024);
        let (mut r, mut w) = connect(server.addr());
        assert!(roundtrip(&mut r, &mut w, "FROB x").starts_with("ERR unknown command"));
        assert!(roundtrip(&mut r, &mut w, "OPEN @bad").starts_with("ERR invalid session id"));
        assert!(roundtrip(&mut r, &mut w, "OPEN s nosuchmodel").starts_with("ERR unknown model"));
        assert!(roundtrip(&mut r, &mut w, "@ghost p w(x)1").starts_with("ERR unknown session"));
        assert_eq!(roundtrip(&mut r, &mut w, "OPEN s sc"), "OK s");
        assert!(roundtrip(&mut r, &mut w, "OPEN s").starts_with("ERR session exists"));
        let stats = roundtrip(&mut r, &mut w, "STATS");
        assert!(stats.starts_with("STATS sessions=1 "), "{stats}");
        assert_eq!(roundtrip(&mut r, &mut w, "SHUTDOWN"), "BYE");
        server.wait();
    }
}

//! Load generator for the admission server.
//!
//! Drives prepared `(session id, trace)` work over loopback: `C`
//! connections each own a slice of the sessions, `OPEN` them, stream
//! their events round-robin (so sessions interleave on the wire the
//! way independent clients would), pace a `QUERY` every `query_every`
//! events per session — which both samples verdict latency and bounds
//! the server-side queue, so a well-configured run never sees `BUSY` —
//! and finally `CLOSE` every session to collect its end-of-stream
//! verdict payload.
//!
//! The generator is deliberately dumb about *what* it sends: callers
//! hand it complete traces (from `smc trace gen` machinery or the
//! litmus corpus), keeping this crate free of simulator dependencies.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Instant;

use smc_history::trace::{emit_trace, session_line, Trace};

/// Tuning for [`run`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7400`.
    pub addr: String,
    /// Concurrent connections; sessions are dealt round-robin across
    /// them.
    pub conns: usize,
    /// Issue a latency-sampled `QUERY` every this many events per
    /// session (0 = only the final `CLOSE`). Keep at or below the
    /// server's queue cap and `BUSY` can never fire.
    pub query_every: usize,
    /// Send `SHUTDOWN` after the last session closes.
    pub shutdown: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7400".into(),
            conns: 8,
            query_every: 64,
            shutdown: false,
        }
    }
}

/// End-of-stream result for one session.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Session id.
    pub sid: String,
    /// Verdict payload from the `CLOSED` reply (event count, then
    /// `model=verdict` tokens — or `error: ...` for poisoned
    /// sessions). Compare against [`crate::offline_payload`].
    pub payload: String,
}

/// Aggregate measurements from one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Sessions driven.
    pub sessions: usize,
    /// Events sent (header lines excluded).
    pub events: u64,
    /// Wall time from first `OPEN` to last `CLOSED`, in nanoseconds.
    pub elapsed_ns: u64,
    /// `events / elapsed` — the sustained ingest rate, counted only
    /// once every event's verdict work is drained (the `CLOSE` barrier).
    pub events_per_sec: f64,
    /// Latency-sampled `QUERY` round-trips.
    pub queries: u64,
    /// Median `QUERY` round-trip, microseconds.
    pub query_p50_us: u64,
    /// 99th-percentile `QUERY` round-trip, microseconds.
    pub query_p99_us: u64,
    /// `BUSY` replies observed (0 in a well-paced run).
    pub busy: u64,
    /// Per-session final payloads, in `work` order.
    pub outcomes: Vec<SessionOutcome>,
}

struct ConnResult {
    outcomes: Vec<(usize, SessionOutcome)>,
    latencies_us: Vec<u64>,
    events: u64,
    busy: u64,
}

/// Read the next solicited reply line, absorbing asynchronous `BUSY`
/// notices (which answer an earlier `EV`, not the request we just
/// wrote).
fn read_reply(r: &mut BufReader<TcpStream>, busy: &mut u64) -> Result<String, String> {
    loop {
        let mut line = String::new();
        r.read_line(&mut line).map_err(|e| format!("read: {e}"))?;
        if line.is_empty() {
            return Err("server closed the connection".into());
        }
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("BUSY ") {
            let _ = rest;
            *busy += 1;
            continue;
        }
        return Ok(line.to_owned());
    }
}

fn drive_conn(
    cfg: &LoadgenConfig,
    work: &[(usize, &(String, Trace))],
) -> Result<ConnResult, String> {
    let stream = TcpStream::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    let mut r = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut w = BufWriter::with_capacity(64 * 1024, stream);
    let mut res = ConnResult {
        outcomes: Vec::with_capacity(work.len()),
        latencies_us: Vec::new(),
        events: 0,
        busy: 0,
    };

    // Pre-render every session's wire lines (headers first, so the
    // server declares tables before events and never rebuilds).
    let lines: Vec<Vec<String>> = work
        .iter()
        .map(|(_, (sid, t))| {
            emit_trace(t)
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(|l| session_line(sid, l))
                .collect()
        })
        .collect();
    let header_count: Vec<usize> = work
        .iter()
        .map(|(_, (_, t))| usize::from(t.num_procs() > 0) + usize::from(t.num_locs() > 0))
        .collect();

    for (_, (sid, _)) in work {
        writeln!(w, "OPEN {sid}").map_err(|e| e.to_string())?;
    }
    w.flush().map_err(|e| e.to_string())?;
    for (_, (sid, _)) in work {
        let reply = read_reply(&mut r, &mut res.busy)?;
        if reply != format!("OK {sid}") {
            return Err(format!("OPEN {sid}: unexpected reply `{reply}`"));
        }
    }

    // Round-robin across this connection's sessions: one line each per
    // sweep, so the server sees genuinely interleaved traffic.
    let mut cursor = vec![0usize; work.len()];
    let mut since_query = vec![0usize; work.len()];
    let mut live = work.len();
    while live > 0 {
        live = 0;
        for (i, session_lines) in lines.iter().enumerate() {
            if cursor[i] >= session_lines.len() {
                continue;
            }
            live += 1;
            writeln!(w, "{}", session_lines[cursor[i]]).map_err(|e| e.to_string())?;
            if cursor[i] >= header_count[i] {
                res.events += 1;
                since_query[i] += 1;
            }
            cursor[i] += 1;
            if cfg.query_every > 0 && since_query[i] >= cfg.query_every {
                since_query[i] = 0;
                let sid = &work[i].1 .0;
                writeln!(w, "QUERY {sid}").map_err(|e| e.to_string())?;
                w.flush().map_err(|e| e.to_string())?;
                let t0 = Instant::now();
                let reply = read_reply(&mut r, &mut res.busy)?;
                res.latencies_us
                    .push(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
                if !reply.starts_with(&format!("VERDICT {sid} ")) {
                    return Err(format!("QUERY {sid}: unexpected reply `{reply}`"));
                }
            }
        }
    }

    for (orig, (sid, _)) in work {
        writeln!(w, "CLOSE {sid}").map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
        let reply = read_reply(&mut r, &mut res.busy)?;
        let prefix = format!("CLOSED {sid} ");
        let Some(payload) = reply.strip_prefix(&prefix) else {
            return Err(format!("CLOSE {sid}: unexpected reply `{reply}`"));
        };
        res.outcomes.push((
            *orig,
            SessionOutcome {
                sid: sid.clone(),
                payload: payload.to_owned(),
            },
        ));
    }
    if cfg.shutdown {
        writeln!(w, "SHUTDOWN").map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
        let reply = read_reply(&mut r, &mut res.busy)?;
        if reply != "BYE" {
            return Err(format!("SHUTDOWN: unexpected reply `{reply}`"));
        }
    }
    Ok(res)
}

/// Drive `work` against a running server and collect throughput,
/// latency percentiles and every session's final verdict payload.
pub fn run(cfg: &LoadgenConfig, work: &[(String, Trace)]) -> Result<LoadgenReport, String> {
    if work.is_empty() {
        return Err("loadgen: no sessions to drive".into());
    }
    let conns = cfg.conns.clamp(1, work.len());
    // Only the last connection sends SHUTDOWN (if asked), after every
    // other connection has closed its sessions.
    let t0 = Instant::now();
    let results: Vec<Result<ConnResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let my_work: Vec<(usize, &(String, Trace))> = work
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % conns == c)
                    .collect();
                let mut cfg = cfg.clone();
                cfg.shutdown = false;
                scope.spawn(move || drive_conn(&cfg, &my_work))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("loadgen thread panicked".into()))
            })
            .collect()
    });
    let elapsed_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;

    let mut outcomes_by_idx: Vec<Option<SessionOutcome>> = vec![None; work.len()];
    let mut latencies: Vec<u64> = Vec::new();
    let (mut events, mut busy) = (0u64, 0u64);
    for res in results {
        let res = res?;
        events += res.events;
        busy += res.busy;
        latencies.extend(res.latencies_us);
        for (i, o) in res.outcomes {
            outcomes_by_idx[i] = Some(o);
        }
    }
    if cfg.shutdown {
        let stream =
            TcpStream::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;
        let mut r = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
        let mut w = stream;
        writeln!(w, "SHUTDOWN").map_err(|e| e.to_string())?;
        let mut scratch = 0u64;
        let reply = read_reply(&mut r, &mut scratch)?;
        if reply != "BYE" {
            return Err(format!("SHUTDOWN: unexpected reply `{reply}`"));
        }
    }

    latencies.sort_unstable();
    let pct = |p: usize| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            latencies[(latencies.len() * p / 100).min(latencies.len() - 1)]
        }
    };
    let secs = (elapsed_ns as f64) / 1e9;
    Ok(LoadgenReport {
        sessions: work.len(),
        events,
        elapsed_ns,
        events_per_sec: if secs > 0.0 {
            events as f64 / secs
        } else {
            0.0
        },
        queries: latencies.len() as u64,
        query_p50_us: pct(50),
        query_p99_us: pct(99),
        busy,
        outcomes: outcomes_by_idx
            .into_iter()
            .map(|o| o.expect("every session closed"))
            .collect(),
    })
}

/// Diff every session's server payload against the offline monitor on
/// the same trace; returns the list of mismatches (empty = verified).
pub fn verify(
    work: &[(String, Trace)],
    report: &LoadgenReport,
    models: &[smc_core::spec::ModelSpec],
    cfg: &smc_monitor::MonitorConfig,
) -> Vec<String> {
    let mut mismatches = Vec::new();
    for ((sid, t), outcome) in work.iter().zip(&report.outcomes) {
        let want = crate::offline_payload(models, cfg, t);
        if outcome.payload != want {
            mismatches.push(format!(
                "session {sid}: serve said `{}`, offline says `{want}`",
                outcome.payload
            ));
        }
    }
    mismatches
}

#!/usr/bin/env sh
# Quality gate: formatting + lints + the full test suite.
#
# Usage: scripts/check.sh [--no-test]
#   --no-test   run only the fast static checks (fmt + clippy)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "${1:-}" != "--no-test" ]; then
    echo "==> cargo test -q"
    cargo test -q

    # Verdict drift gate: the exhaustive small-history sweep must classify
    # every history exactly as the checked-in golden file records. A diff
    # here means a checker change altered admitted sets — intended changes
    # must regenerate tests/golden/exhaustive_verdicts.txt.
    echo "==> smc corpus --exhaustive (golden verdicts)"
    sweep_json=$(mktemp)
    sweep_j4=$(mktemp)
    trap 'rm -f "$sweep_json" "$sweep_j4"' EXIT
    cargo run -q --release --bin smc -- corpus --exhaustive --json "$sweep_json" >/dev/null
    if ! grep '"verdicts"' "$sweep_json" | diff -u tests/golden/exhaustive_verdicts.txt -; then
        echo "verdict drift against tests/golden/exhaustive_verdicts.txt" >&2
        exit 1
    fi

    # Scheduler equivalence gate: the work-stealing parallel engine must
    # classify the exhaustive sweep bit-identically to the sequential
    # checker — same golden file, checked at 4 workers.
    echo "==> smc corpus --exhaustive --jobs 4 (j1 vs j4 equivalence)"
    cargo run -q --release --bin smc -- corpus --exhaustive --jobs 4 --json "$sweep_j4" >/dev/null
    if ! grep '"verdicts"' "$sweep_j4" | diff -u tests/golden/exhaustive_verdicts.txt -; then
        echo "parallel (jobs=4) verdicts drifted from tests/golden/exhaustive_verdicts.txt" >&2
        exit 1
    fi

    # Separation drift gate: the witness search over the small universes
    # must decide every model-pair direction exactly as recorded. A diff
    # means a checker or search change moved a lattice edge — intended
    # changes must regenerate tests/golden/separations_small.txt.
    echo "==> smc separate --all --max-universe small (golden directions)"
    sep_json=$(mktemp)
    trap 'rm -f "$sweep_json" "$sweep_j4" "$sep_json"' EXIT
    cargo run -q --release --bin smc -- separate --all --max-universe small --jobs 4 \
        --json "$sep_json" >/dev/null
    if ! grep '"admits"' "$sep_json" | diff -u tests/golden/separations_small.txt -; then
        echo "separation drift against tests/golden/separations_small.txt" >&2
        exit 1
    fi

    # Monitor golden gate: replay the whole litmus corpus through the
    # streaming monitor and diff its final verdicts against the batch
    # checker's, per model. The command itself exits nonzero on any
    # mismatch, printing the offending (test, model) pair.
    echo "==> smc monitor --corpus (streaming vs batch verdicts)"
    cargo run -q --release --bin smc -- monitor --corpus --jobs 4 >/dev/null
fi

echo "==> OK"

#!/usr/bin/env sh
# Quality gate: formatting + lints + the full test suite.
#
# Usage: scripts/check.sh [--no-test]
#   --no-test   run only the fast static checks (fmt + clippy)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "${1:-}" != "--no-test" ]; then
    echo "==> cargo test -q"
    cargo test -q

    # Verdict drift gate: the exhaustive small-history sweep must classify
    # every history exactly as the checked-in golden file records. A diff
    # here means a checker change altered admitted sets — intended changes
    # must regenerate tests/golden/exhaustive_verdicts.txt.
    echo "==> smc corpus --exhaustive (golden verdicts)"
    sweep_json=$(mktemp)
    sweep_j4=$(mktemp)
    trap 'rm -f "$sweep_json" "$sweep_j4"' EXIT
    cargo run -q --release --bin smc -- corpus --exhaustive --json "$sweep_json" >/dev/null
    if ! grep '"verdicts"' "$sweep_json" | diff -u tests/golden/exhaustive_verdicts.txt -; then
        echo "verdict drift against tests/golden/exhaustive_verdicts.txt" >&2
        exit 1
    fi

    # Scheduler equivalence gate: the work-stealing parallel engine must
    # classify the exhaustive sweep bit-identically to the sequential
    # checker — same golden file, checked at 4 workers.
    echo "==> smc corpus --exhaustive --jobs 4 (j1 vs j4 equivalence)"
    cargo run -q --release --bin smc -- corpus --exhaustive --jobs 4 --json "$sweep_j4" >/dev/null
    if ! grep '"verdicts"' "$sweep_j4" | diff -u tests/golden/exhaustive_verdicts.txt -; then
        echo "parallel (jobs=4) verdicts drifted from tests/golden/exhaustive_verdicts.txt" >&2
        exit 1
    fi

    # Separation drift gate: the witness search over the small universes
    # must decide every model-pair direction exactly as recorded. A diff
    # means a checker or search change moved a lattice edge — intended
    # changes must regenerate tests/golden/separations_small.txt.
    echo "==> smc separate --all --max-universe small (golden directions)"
    sep_json=$(mktemp)
    trap 'rm -f "$sweep_json" "$sweep_j4" "$sep_json"' EXIT
    cargo run -q --release --bin smc -- separate --all --max-universe small --jobs 4 \
        --json "$sep_json" >/dev/null
    if ! grep '"admits"' "$sep_json" | diff -u tests/golden/separations_small.txt -; then
        echo "separation drift against tests/golden/separations_small.txt" >&2
        exit 1
    fi

    # Engine equivalence gate: the order-constraint saturation engine
    # must agree with the exhaustive checker on every corpus history for
    # every model that advertises saturate support, and every saturate
    # witness must pass the independent verifier. The command exits
    # nonzero on any divergence, printing the offending (test, model).
    echo "==> smc corpus --engine-equiv (exhaustive vs saturate)"
    cargo run -q --release --bin smc -- corpus --engine-equiv --jobs 4 >/dev/null

    # Monitor golden gate: replay the whole litmus corpus through the
    # streaming monitor and diff its final verdicts against the batch
    # checker's, per model. The command itself exits nonzero on any
    # mismatch, printing the offending (test, model) pair.
    echo "==> smc monitor --corpus (streaming vs batch verdicts)"
    cargo run -q --release --bin smc -- monitor --corpus --jobs 4 >/dev/null

    # Bench drift gate for the parallel small-history pessimization: on a
    # litmus-sized check the adaptive cutover must keep `check_parallel`
    # at 4 workers within 1.5x of the sequential checker. Before the
    # cutover, j4 paid thread-spawn plus shared failed-set setup on a
    # ~3-node search and ran 14-17x slower than sequential.
    echo "==> bench drift gate (split_dfs_sc_reversed: j4 <= 1.5x sequential)"
    bench_json=$(mktemp)
    trap 'rm -f "$sweep_json" "$sweep_j4" "$sep_json" "$bench_json"' EXIT
    cargo bench -q --bench bench_batch -- split_dfs_sc_reversed --json "$bench_json" >/dev/null
    seq_ns=$(grep -o '"batch/split_dfs_sc_reversed/sequential", "ns_per_iter": [0-9]*' \
        "$bench_json" | grep -o '[0-9]*$')
    j4_ns=$(grep -o '"batch/split_dfs_sc_reversed/check_parallel_j4", "ns_per_iter": [0-9]*' \
        "$bench_json" | grep -o '[0-9]*$')
    if [ -z "$seq_ns" ] || [ -z "$j4_ns" ]; then
        echo "bench gate: missing split_dfs_sc_reversed rows in $bench_json" >&2
        exit 1
    fi
    if [ $((j4_ns * 10)) -gt $((seq_ns * 15)) ]; then
        echo "bench gate: check_parallel_j4 (${j4_ns}ns) > 1.5x sequential (${seq_ns}ns)" >&2
        echo "the parallel small-history pessimization is back — check the cutover probe" >&2
        exit 1
    fi
    echo "    sequential ${seq_ns}ns, check_parallel_j4 ${j4_ns}ns (within 1.5x)"

    # Saturation bench drift gate: the conflict-driven solver must keep
    # `bighist/TSO_ops_256/saturate` within 1.5x of the committed
    # BENCH_bighist.json baseline. A regression here means watched
    # propagation, learning, or the branching heuristic lost its edge —
    # intended perf changes must regenerate BENCH_bighist.json.
    echo "==> bench drift gate (TSO_ops_256/saturate <= 1.5x committed baseline)"
    sat_json=$(mktemp)
    trap 'rm -f "$sweep_json" "$sweep_j4" "$sep_json" "$bench_json" "$sat_json"' EXIT
    cargo bench -q --bench bench_bighist -- TSO_ops_256 --json "$sat_json" >/dev/null
    sat_base=$(grep -o '"bighist/TSO_ops_256/saturate", "ns_per_iter": [0-9]*' \
        BENCH_bighist.json | grep -o '[0-9]*$')
    sat_now=$(grep -o '"bighist/TSO_ops_256/saturate", "ns_per_iter": [0-9]*' \
        "$sat_json" | grep -o '[0-9]*$')
    if [ -z "$sat_base" ] || [ -z "$sat_now" ]; then
        echo "bench gate: missing bighist/TSO_ops_256/saturate row" >&2
        exit 1
    fi
    if [ $((sat_now * 10)) -gt $((sat_base * 15)) ]; then
        echo "bench gate: TSO_ops_256/saturate (${sat_now}ns) > 1.5x baseline (${sat_base}ns)" >&2
        echo "saturation engine regressed — check watched propagation and learning" >&2
        exit 1
    fi
    echo "    baseline ${sat_base}ns, current ${sat_now}ns (within 1.5x)"
fi

echo "==> OK"

#!/usr/bin/env sh
# Quality gate: formatting + lints + the full test suite.
#
# Usage: scripts/check.sh [--no-test]
#   --no-test   run only the fast static checks (fmt + clippy)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "${1:-}" != "--no-test" ]; then
    echo "==> cargo test -q"
    cargo test -q

    # Verdict drift gate: the exhaustive small-history sweep must classify
    # every history exactly as the checked-in golden file records. A diff
    # here means a checker change altered admitted sets — intended changes
    # must regenerate tests/golden/exhaustive_verdicts.txt.
    echo "==> smc corpus --exhaustive (golden verdicts)"
    sweep_json=$(mktemp)
    sweep_j4=$(mktemp)
    trap 'rm -f "$sweep_json" "$sweep_j4"' EXIT
    cargo run -q --release --bin smc -- corpus --exhaustive --json "$sweep_json" >/dev/null
    if ! grep '"verdicts"' "$sweep_json" | diff -u tests/golden/exhaustive_verdicts.txt -; then
        echo "verdict drift against tests/golden/exhaustive_verdicts.txt" >&2
        exit 1
    fi

    # Scheduler equivalence gate: the work-stealing parallel engine must
    # classify the exhaustive sweep bit-identically to the sequential
    # checker — same golden file, checked at 4 workers.
    echo "==> smc corpus --exhaustive --jobs 4 (j1 vs j4 equivalence)"
    cargo run -q --release --bin smc -- corpus --exhaustive --jobs 4 --json "$sweep_j4" >/dev/null
    if ! grep '"verdicts"' "$sweep_j4" | diff -u tests/golden/exhaustive_verdicts.txt -; then
        echo "parallel (jobs=4) verdicts drifted from tests/golden/exhaustive_verdicts.txt" >&2
        exit 1
    fi

    # Separation drift gate: the witness search over the small universes
    # must decide every model-pair direction exactly as recorded. A diff
    # means a checker or search change moved a lattice edge — intended
    # changes must regenerate tests/golden/separations_small.txt.
    echo "==> smc separate --all --max-universe small (golden directions)"
    sep_json=$(mktemp)
    trap 'rm -f "$sweep_json" "$sweep_j4" "$sep_json"' EXIT
    cargo run -q --release --bin smc -- separate --all --max-universe small --jobs 4 \
        --json "$sep_json" >/dev/null
    if ! grep '"admits"' "$sep_json" | diff -u tests/golden/separations_small.txt -; then
        echo "separation drift against tests/golden/separations_small.txt" >&2
        exit 1
    fi

    # Engine equivalence gate: the order-constraint saturation engine
    # must agree with the exhaustive checker on every corpus history for
    # every model that advertises saturate support, and every saturate
    # witness must pass the independent verifier. The command exits
    # nonzero on any divergence, printing the offending (test, model).
    echo "==> smc corpus --engine-equiv (exhaustive vs saturate)"
    cargo run -q --release --bin smc -- corpus --engine-equiv --jobs 4 >/dev/null

    # Monitor golden gate: replay the whole litmus corpus through the
    # streaming monitor and diff its final verdicts against the batch
    # checker's, per model. The command itself exits nonzero on any
    # mismatch, printing the offending (test, model) pair.
    echo "==> smc monitor --corpus (streaming vs batch verdicts)"
    cargo run -q --release --bin smc -- monitor --corpus --jobs 4 >/dev/null

    # Serve smoke gate: boot the real `smc serve` binary, drive it over
    # loopback with `smc loadgen --verify`, and require every session's
    # final verdict to match the offline monitor (the loadgen exits
    # nonzero on any mismatch). --shutdown stops the server afterwards.
    echo "==> smc serve + loadgen --verify (loopback smoke)"
    serve_log=$(mktemp)
    trap 'rm -f "$sweep_json" "$sweep_j4" "$sep_json" "$serve_log"' EXIT
    ./target/release/smc serve --listen 127.0.0.1:0 >"$serve_log" &
    serve_pid=$!
    serve_addr=""
    for _ in $(seq 1 100); do
        serve_addr=$(sed -n 's/^listening on //p' "$serve_log")
        [ -n "$serve_addr" ] && break
        sleep 0.1
    done
    if [ -z "$serve_addr" ]; then
        echo "serve gate: server never reported its address" >&2
        kill "$serve_pid" 2>/dev/null || true
        exit 1
    fi
    ./target/release/smc loadgen --addr "$serve_addr" --sessions 64 --events 16 \
        --conns 4 --query-every 8 --seed 42 --verify --shutdown >/dev/null
    wait "$serve_pid"

    # Session lifecycle smoke: a live session checkpointed over the wire
    # with SNAPSHOT must come back under a new id with RESUME carrying
    # its event count, keep accepting events, and STATS must count both.
    echo "==> serve SNAPSHOT/RESUME smoke"
    life_log=$(mktemp)
    ckpt_dir=$(mktemp -d)
    trap 'rm -rf "$sweep_json" "$sweep_j4" "$sep_json" "$serve_log" "$life_log" "$ckpt_dir"' EXIT
    ./target/release/smc serve --listen 127.0.0.1:0 >"$life_log" &
    life_pid=$!
    life_addr=""
    for _ in $(seq 1 100); do
        life_addr=$(sed -n 's/^listening on //p' "$life_log")
        [ -n "$life_addr" ] && break
        sleep 0.1
    done
    if [ -z "$life_addr" ]; then
        echo "lifecycle smoke: server never reported its address" >&2
        kill "$life_pid" 2>/dev/null || true
        exit 1
    fi
    life_out=$(bash -c '
        addr=$1; dir=$2
        exec 3<>"/dev/tcp/${addr%:*}/${addr##*:}"
        printf "OPEN a\n@a p w(x)1\n@a q r(x)1\nSNAPSHOT a %s\nCLOSE a\nRESUME b %s\n@b q r(x)1\nQUERY b\nSTATS\nSHUTDOWN\n" \
            "$dir/a.ckpt" "$dir/a.ckpt" >&3
        cat <&3
    ' smoke "$life_addr" "$ckpt_dir")
    wait "$life_pid"
    for want in "SNAPSHOTTED a 2" "RESUMED b 2" "VERDICT b 3" "snapshots=1" "resumes=1"; do
        if ! printf '%s\n' "$life_out" | grep -q "$want"; then
            echo "lifecycle smoke: missing \`$want\` in server replies:" >&2
            printf '%s\n' "$life_out" >&2
            exit 1
        fi
    done

    # Serve bench drift gate: the default throughput bench (1024
    # sessions over loopback) must stay within 1.5x of the committed
    # BENCH_serve.json events/sec baseline, with every verdict verified
    # against the offline monitor. Intended perf changes must
    # regenerate BENCH_serve.json.
    echo "==> bench drift gate (serve --bench events/sec >= baseline/1.5)"
    serve_json=$(mktemp)
    trap 'rm -rf "$sweep_json" "$sweep_j4" "$sep_json" "$serve_log" "$life_log" "$ckpt_dir" "$serve_json"' EXIT
    ./target/release/smc serve --bench --json "$serve_json" >/dev/null
    if ! grep -q '"verified":true' "$serve_json"; then
        echo "serve bench gate: verdict mismatch against the offline monitor" >&2
        exit 1
    fi
    eps_base=$(grep -o '"events_per_sec":[0-9]*' BENCH_serve.json | grep -o '[0-9]*$')
    eps_now=$(grep -o '"events_per_sec":[0-9]*' "$serve_json" | grep -o '[0-9]*$')
    if [ -z "$eps_base" ] || [ -z "$eps_now" ]; then
        echo "serve bench gate: missing events_per_sec rows" >&2
        exit 1
    fi
    if [ $((eps_now * 15)) -lt $((eps_base * 10)) ]; then
        echo "serve bench gate: ${eps_now} events/sec < baseline ${eps_base}/1.5" >&2
        echo "server ingest throughput regressed — check batching and the worker pool" >&2
        exit 1
    fi
    echo "    baseline ${eps_base} events/sec, current ${eps_now} (within 1.5x)"

    # Bench drift gate for the parallel small-history pessimization: on a
    # litmus-sized check the adaptive cutover must keep `check_parallel`
    # at 4 workers within 1.5x of the sequential checker. Before the
    # cutover, j4 paid thread-spawn plus shared failed-set setup on a
    # ~3-node search and ran 14-17x slower than sequential.
    echo "==> bench drift gate (split_dfs_sc_reversed: j4 <= 1.5x sequential)"
    bench_json=$(mktemp)
    trap 'rm -rf "$sweep_json" "$sweep_j4" "$sep_json" "$serve_log" "$life_log" "$ckpt_dir" "$serve_json" "$bench_json"' EXIT
    cargo bench -q --bench bench_batch -- split_dfs_sc_reversed --json "$bench_json" >/dev/null
    seq_ns=$(grep -o '"batch/split_dfs_sc_reversed/sequential", "ns_per_iter": [0-9]*' \
        "$bench_json" | grep -o '[0-9]*$')
    j4_ns=$(grep -o '"batch/split_dfs_sc_reversed/check_parallel_j4", "ns_per_iter": [0-9]*' \
        "$bench_json" | grep -o '[0-9]*$')
    if [ -z "$seq_ns" ] || [ -z "$j4_ns" ]; then
        echo "bench gate: missing split_dfs_sc_reversed rows in $bench_json" >&2
        exit 1
    fi
    if [ $((j4_ns * 10)) -gt $((seq_ns * 15)) ]; then
        echo "bench gate: check_parallel_j4 (${j4_ns}ns) > 1.5x sequential (${seq_ns}ns)" >&2
        echo "the parallel small-history pessimization is back — check the cutover probe" >&2
        exit 1
    fi
    echo "    sequential ${seq_ns}ns, check_parallel_j4 ${j4_ns}ns (within 1.5x)"

    # Saturation bench drift gate: the conflict-driven solver must keep
    # `bighist/TSO_ops_256/saturate` within 1.5x of the committed
    # BENCH_bighist.json baseline. A regression here means watched
    # propagation, learning, or the branching heuristic lost its edge —
    # intended perf changes must regenerate BENCH_bighist.json.
    echo "==> bench drift gate (TSO_ops_256/saturate <= 1.5x committed baseline)"
    sat_json=$(mktemp)
    trap 'rm -rf "$sweep_json" "$sweep_j4" "$sep_json" "$serve_log" "$life_log" "$ckpt_dir" "$serve_json" "$bench_json" "$sat_json"' EXIT
    cargo bench -q --bench bench_bighist -- TSO_ops_256 --json "$sat_json" >/dev/null
    sat_base=$(grep -o '"bighist/TSO_ops_256/saturate", "ns_per_iter": [0-9]*' \
        BENCH_bighist.json | grep -o '[0-9]*$')
    sat_now=$(grep -o '"bighist/TSO_ops_256/saturate", "ns_per_iter": [0-9]*' \
        "$sat_json" | grep -o '[0-9]*$')
    if [ -z "$sat_base" ] || [ -z "$sat_now" ]; then
        echo "bench gate: missing bighist/TSO_ops_256/saturate row" >&2
        exit 1
    fi
    if [ $((sat_now * 10)) -gt $((sat_base * 15)) ]; then
        echo "bench gate: TSO_ops_256/saturate (${sat_now}ns) > 1.5x baseline (${sat_base}ns)" >&2
        echo "saturation engine regressed — check watched propagation and learning" >&2
        exit 1
    fi
    echo "    baseline ${sat_base}ns, current ${sat_now}ns (within 1.5x)"

    # Lifecycle bench gates: (a) resuming a 10k-event session from a
    # checkpoint must stay >= 5x faster than cold-replaying the stream
    # (the whole point of checkpoints — in practice it is >100x); (b)
    # warm restore must stay within 1.5x of the committed
    # BENCH_lifecycle.json baseline; (c) windowed monitoring cost must
    # stay linear in stream length (10k events <= 3x the 5k time —
    # superlinear growth means window seals stopped bounding the
    # frontier; the bench itself asserts the state-count ceiling).
    echo "==> bench drift gate (lifecycle: warm restore >= 5x cold replay, linear windows)"
    life_json=$(mktemp)
    trap 'rm -rf "$sweep_json" "$sweep_j4" "$sep_json" "$serve_log" "$life_log" "$ckpt_dir" "$serve_json" "$bench_json" "$sat_json" "$life_json"' EXIT
    cargo bench -q --bench bench_lifecycle -- --json "$life_json" >/dev/null
    cold_ns=$(grep -o '"lifecycle/session_10000_events/cold_replay", "ns_per_iter": [0-9]*' \
        "$life_json" | grep -o '[0-9]*$')
    warm_ns=$(grep -o '"lifecycle/session_10000_events/warm_restore", "ns_per_iter": [0-9]*' \
        "$life_json" | grep -o '[0-9]*$')
    warm_base=$(grep -o '"lifecycle/session_10000_events/warm_restore", "ns_per_iter": [0-9]*' \
        BENCH_lifecycle.json | grep -o '[0-9]*$')
    w5_ns=$(grep -o '"lifecycle/windowed_steady_state/5000_events", "ns_per_iter": [0-9]*' \
        "$life_json" | grep -o '[0-9]*$')
    w10_ns=$(grep -o '"lifecycle/windowed_steady_state/10000_events", "ns_per_iter": [0-9]*' \
        "$life_json" | grep -o '[0-9]*$')
    if [ -z "$cold_ns" ] || [ -z "$warm_ns" ] || [ -z "$warm_base" ] || [ -z "$w5_ns" ] || [ -z "$w10_ns" ]; then
        echo "lifecycle bench gate: missing rows in $life_json" >&2
        exit 1
    fi
    if [ $((warm_ns * 5)) -gt "$cold_ns" ]; then
        echo "lifecycle bench gate: warm restore (${warm_ns}ns) not 5x faster than cold replay (${cold_ns}ns)" >&2
        echo "checkpoint restore regressed — check ckpt deserialization and engine reload" >&2
        exit 1
    fi
    if [ $((warm_ns * 10)) -gt $((warm_base * 15)) ]; then
        echo "lifecycle bench gate: warm restore (${warm_ns}ns) > 1.5x baseline (${warm_base}ns)" >&2
        echo "intended perf changes must regenerate BENCH_lifecycle.json" >&2
        exit 1
    fi
    if [ "$w10_ns" -gt $((w5_ns * 3)) ]; then
        echo "lifecycle bench gate: windowed 10k events (${w10_ns}ns) > 3x the 5k time (${w5_ns}ns)" >&2
        echo "windowed monitoring went superlinear — check window sealing" >&2
        exit 1
    fi
    echo "    cold ${cold_ns}ns, warm ${warm_ns}ns (>=5x), windows 5k ${w5_ns}ns -> 10k ${w10_ns}ns (linear)"
fi

echo "==> OK"

#!/usr/bin/env sh
# Quality gate: formatting + lints + the full test suite.
#
# Usage: scripts/check.sh [--no-test]
#   --no-test   run only the fast static checks (fmt + clippy)
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [ "${1:-}" != "--no-test" ]; then
    echo "==> cargo test -q"
    cargo test -q
fi

echo "==> OK"

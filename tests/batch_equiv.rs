//! Equivalence of the sequential checker and the parallel batch engine.
//!
//! Properties, over random histories and the embedded litmus corpus:
//!
//! * wherever both the sequential check and a parallel check *decide*
//!   (Allowed/Disallowed), they agree;
//! * every `Allowed` the parallel engine produces carries a witness that
//!   the independent verifier accepts;
//! * `check_batch` results are positionally identical to checking each
//!   pair sequentially, for any worker count.

use smc_core::batch::{check_batch, check_matrix, check_parallel};
use smc_core::checker::{check_with_config, CheckConfig, Verdict};
use smc_core::models;
use smc_core::verify::verify_witness;
use smc_core::ModelSpec;
use smc_history::{History, HistoryBuilder};
use smc_prng::SmallRng;
use smc_programs::corpus::litmus_suite;

const PROCS: [&str; 3] = ["p", "q", "r"];
const LOCS: [&str; 2] = ["x", "y"];

fn random_history(rng: &mut SmallRng) -> History {
    let mut b = HistoryBuilder::new();
    for proc in PROCS.iter().take(rng.gen_range(1..4usize)) {
        b.add_proc(proc);
        for _ in 0..rng.gen_range(0..4usize) {
            let is_write = rng.gen_bool(0.5);
            let loc = LOCS[rng.gen_range(0..LOCS.len())];
            let v = rng.gen_range(0..3i64);
            if is_write {
                b.write(proc, loc, v.clamp(1, 2));
            } else {
                b.read(proc, loc, v);
            }
        }
    }
    b.build()
}

/// Sequential `check` and `check_parallel` agree on every decided verdict,
/// and parallel witnesses verify independently.
#[test]
fn parallel_check_agrees_with_sequential() {
    let cfg = CheckConfig::default();
    for case in 0..64u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(case));
        for spec in models::all_models() {
            let seq = check_with_config(&h, &spec, &cfg);
            for jobs in [2usize, 4] {
                let (par, _stats) = check_parallel(&h, &spec, &cfg, jobs);
                if let (Some(a), Some(b)) = (seq.decided(), par.decided()) {
                    assert_eq!(
                        a, b,
                        "case {case} {} jobs={jobs}: sequential {seq:?} vs parallel {par:?}\n{h}",
                        spec.name
                    );
                }
                if let Verdict::Allowed(w) = &par {
                    verify_witness(&h, &spec, w).unwrap_or_else(|e| {
                        panic!(
                            "case {case} {} jobs={jobs}: bad parallel witness: {e}\n{h}",
                            spec.name
                        )
                    });
                }
            }
        }
    }
}

/// `check_batch` is positionally identical to the sequential per-pair
/// checker, for several worker counts.
#[test]
fn batch_matches_sequential_positionally() {
    let cfg = CheckConfig::default();
    let histories: Vec<History> = (100..116u64)
        .map(|seed| random_history(&mut SmallRng::seed_from_u64(seed)))
        .collect();
    let model_list = models::all_models();
    let pairs: Vec<(&History, &ModelSpec)> = histories
        .iter()
        .flat_map(|h| model_list.iter().map(move |m| (h, m)))
        .collect();
    let sequential: Vec<Verdict> = pairs
        .iter()
        .map(|(h, m)| check_with_config(h, m, &cfg))
        .collect();
    for jobs in [1usize, 3, 8] {
        let batch = check_batch(&pairs, &cfg, jobs);
        assert_eq!(batch.len(), pairs.len());
        for (i, r) in batch.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(
                r.verdict, sequential[i],
                "pair {i} jobs={jobs}: batch verdict diverged"
            );
            if let Verdict::Allowed(w) = &r.verdict {
                let (h, m) = pairs[i];
                verify_witness(h, m, w)
                    .unwrap_or_else(|e| panic!("pair {i}: bad batch witness: {e}"));
            }
        }
    }
}

/// A memoized batch decides exactly like the plain sequential checker,
/// its witnesses (including rehydrated cache hits) verify independently,
/// and repeating the work actually hits the cache.
#[test]
fn memoized_batch_matches_sequential_and_hits() {
    let plain = CheckConfig::default();
    let memo_cfg = CheckConfig::default().with_memo();
    let histories: Vec<History> = litmus_suite().iter().map(|t| t.history.clone()).collect();
    let model_list = models::all_models();
    let pairs: Vec<(&History, &ModelSpec)> = histories
        .iter()
        .flat_map(|h| model_list.iter().map(move |m| (h, m)))
        .collect();
    // Each pair appears twice: the second occurrence must be served from
    // the memo table without changing any verdict.
    let doubled: Vec<(&History, &ModelSpec)> = pairs.iter().chain(pairs.iter()).copied().collect();
    let sequential: Vec<Verdict> = doubled
        .iter()
        .map(|(h, m)| check_with_config(h, m, &plain))
        .collect();
    for jobs in [1usize, 4] {
        let batch = check_batch(&doubled, &memo_cfg, jobs);
        for (i, r) in batch.iter().enumerate() {
            assert_eq!(
                r.verdict.decided(),
                sequential[i].decided(),
                "pair {i} jobs={jobs}: memoized batch diverged"
            );
            if let Verdict::Allowed(w) = &r.verdict {
                let (h, m) = doubled[i];
                verify_witness(h, m, w)
                    .unwrap_or_else(|e| panic!("pair {i}: bad memoized witness: {e}"));
            }
        }
    }
    let stats = memo_cfg.memo.as_ref().expect("with_memo set").stats();
    assert!(
        stats.hits > 0,
        "doubled batch never hit the memo: {stats:?}"
    );
}

/// The embedded litmus corpus classifies identically under sequential and
/// parallel batch checking, and satisfies its recorded expectations both
/// ways.
#[test]
fn corpus_verdicts_identical_across_job_counts() {
    let cfg = CheckConfig::default();
    let suite = litmus_suite();
    let histories: Vec<History> = suite.iter().map(|t| t.history.clone()).collect();
    let model_list = models::all_models();
    let seq = check_matrix(&histories, &model_list, &cfg, 1);
    let par = check_matrix(&histories, &model_list, &cfg, 4);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.verdict, b.verdict, "pair {} diverged", a.index);
    }
    for (ti, t) in suite.iter().enumerate() {
        for (mi, m) in model_list.iter().enumerate() {
            if let Some(expected) = t.expectation(&m.name) {
                let got = par[ti * model_list.len() + mi].verdict.decided();
                assert_eq!(
                    got,
                    Some(expected),
                    "corpus test {} model {}",
                    t.name,
                    m.name
                );
            }
        }
    }
}

/// Verdicts are independent of the adaptive cutover decision: with the
/// probe forced off (`parallel_cutover: 0`, every parallel check fans
/// out immediately) and forced always-on (`u64::MAX`, every parallel
/// check is answered by the sequential probe), `check_parallel` decides
/// exactly like the sequential checker at every worker count, and its
/// witnesses verify independently. Together the two forced settings
/// straddle the default cutover from both sides, so the adaptive path
/// can never change an answer — only where it is computed.
#[test]
fn cutover_extremes_agree_with_sequential() {
    let mut cases: Vec<History> = litmus_suite().iter().map(|t| t.history.clone()).collect();
    cases.extend((2000..2200u64).map(|seed| random_history(&mut SmallRng::seed_from_u64(seed))));
    let model_list = [
        models::sc(),
        models::tso(),
        models::pram(),
        models::causal(),
    ];
    for cutover in [0u64, u64::MAX] {
        let cfg = CheckConfig {
            parallel_cutover: cutover,
            ..CheckConfig::default()
        };
        for (ci, h) in cases.iter().enumerate() {
            for spec in &model_list {
                let seq = check_with_config(h, spec, &cfg);
                for jobs in [1usize, 2, 4, 8] {
                    let (par, stats) = check_parallel(h, spec, &cfg, jobs);
                    assert_eq!(
                        par.decided(),
                        seq.decided(),
                        "case {ci} {} cutover={cutover} jobs={jobs}: {seq:?} vs {par:?}\n{h}",
                        spec.name
                    );
                    // The forced settings pin the cutover decision: with
                    // the probe disabled only jobs=1 runs sequentially;
                    // with an unbounded probe no check ever fans out.
                    if cutover == 0 {
                        assert_eq!(stats.ran_sequential, jobs == 1);
                        assert_eq!(stats.probe_nodes, 0);
                    } else {
                        assert!(stats.ran_sequential);
                    }
                    if let Verdict::Allowed(w) = &par {
                        verify_witness(h, spec, w).unwrap_or_else(|e| {
                            panic!(
                                "case {ci} {} cutover={cutover} jobs={jobs}: bad witness: {e}\n{h}",
                                spec.name
                            )
                        });
                    }
                }
            }
        }
    }
}

/// The work-stealing scheduler and the static-prefix baseline both match
/// the sequential checker — same decided verdicts, and witnesses that
/// verify independently — across every worker count, on the litmus corpus
/// plus 200 random histories. This is the bit-identical-verdicts gate for
/// the parallel engine.
#[test]
fn schedulers_agree_across_job_counts() {
    use smc_core::checker::SchedulerKind;
    let mut cases: Vec<History> = litmus_suite().iter().map(|t| t.history.clone()).collect();
    cases.extend((1000..1200u64).map(|seed| random_history(&mut SmallRng::seed_from_u64(seed))));
    // The models that exercise all three parallel drivers: the single
    // shared view (SC), the store-order fan-out (TSO), and the
    // independent per-processor views (PRAM, causal).
    let model_list = [
        models::sc(),
        models::tso(),
        models::pram(),
        models::causal(),
    ];
    for scheduler in [SchedulerKind::WorkStealing, SchedulerKind::StaticPrefix] {
        let cfg = CheckConfig {
            scheduler,
            ..CheckConfig::default()
        };
        for (ci, h) in cases.iter().enumerate() {
            for spec in &model_list {
                let seq = check_with_config(h, spec, &cfg);
                for jobs in [1usize, 2, 4, 8] {
                    let (par, _) = check_parallel(h, spec, &cfg, jobs);
                    assert_eq!(
                        par.decided(),
                        seq.decided(),
                        "case {ci} {} {scheduler:?} jobs={jobs}: {seq:?} vs {par:?}\n{h}",
                        spec.name
                    );
                    if let Verdict::Allowed(w) = &par {
                        verify_witness(h, spec, w).unwrap_or_else(|e| {
                            panic!(
                                "case {ci} {} {scheduler:?} jobs={jobs}: bad witness: {e}\n{h}",
                                spec.name
                            )
                        });
                    }
                }
            }
        }
    }
}

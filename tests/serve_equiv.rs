//! The admission server agrees with the offline monitor.
//!
//! Serve analogue of `monitor_equiv.rs`: drive many concurrent
//! sessions over loopback with the load generator, collect each
//! session's end-of-stream verdict payload from its `CLOSED` reply,
//! and require byte equality with [`smc_serve::offline_payload`] on
//! the same trace under the same monitor configuration. This pins the
//! whole wire path — line parsing, shard routing, worker-pool batch
//! draining, query interleaving — to the single-session semantics.

use smc_history::trace::Trace;
use smc_monitor::MonitorConfig;
use smc_programs::corpus::litmus_suite;
use smc_serve::loadgen::{self, LoadgenConfig};
use smc_serve::{ServeConfig, Server};
use smc_sim::sched::run_random;
use smc_sim::workload::{Access, OpScript};
use smc_sim::TsoMem;

/// Start an in-process server on an ephemeral port and run `work`
/// through it; panic on any payload mismatch against the offline
/// monitor.
fn assert_serve_matches_offline(work: &[(String, Trace)], cfg: ServeConfig, query_every: usize) {
    let models = cfg.models.clone();
    let mon_cfg = cfg.monitor.clone();
    let server = Server::start(cfg).expect("server start");
    let lg = LoadgenConfig {
        addr: server.addr().to_string(),
        conns: 8,
        query_every,
        shutdown: false,
    };
    let report = loadgen::run(&lg, work).expect("loadgen run");
    assert_eq!(report.sessions, work.len());
    let mismatches = loadgen::verify(work, &report, &models, &mon_cfg);
    assert!(
        mismatches.is_empty(),
        "{} of {} sessions disagree with the offline monitor:\n{}",
        mismatches.len(),
        work.len(),
        mismatches.join("\n")
    );
    server.shutdown();
}

/// Every litmus history as a session, replicated to 64+ concurrent
/// sessions so each shard holds several.
fn corpus_work(copies: usize) -> Vec<(String, Trace)> {
    let suite = litmus_suite();
    let mut work = Vec::new();
    for copy in 0..copies {
        for (i, t) in suite.iter().enumerate() {
            work.push((format!("s{copy}x{i}"), Trace::from_history(&t.history)));
        }
        if work.len() >= 64 && copy + 1 >= 2 {
            break;
        }
    }
    work
}

#[test]
fn corpus_sessions_agree_with_offline() {
    let work = corpus_work(4);
    assert!(work.len() >= 64, "need >= 64 sessions, got {}", work.len());
    assert_serve_matches_offline(&work, ServeConfig::default(), 4);
}

/// Machine-produced arrival-order traces: the live-monitoring input
/// path, across enough seeds for 64+ concurrent sessions.
fn simulator_work(sessions: usize) -> Vec<(String, Trace)> {
    let script = OpScript::new(
        vec![
            vec![Access::write(0, 1), Access::read(1)],
            vec![Access::write(1, 1), Access::read(0)],
            vec![Access::read(0), Access::read(1)],
        ],
        2,
    );
    (0..sessions)
        .map(|seed| {
            let out = run_random(TsoMem::new(3, 2), script.clone(), seed as u64, 200_000);
            assert!(out.completed, "seed {seed}: run did not drain");
            (format!("sim{seed}"), out.trace)
        })
        .collect()
}

#[test]
fn simulator_sessions_agree_with_offline() {
    let work = simulator_work(64);
    assert_serve_matches_offline(&work, ServeConfig::default(), 3);
}

/// A tight frontier budget exhausts every engine almost immediately,
/// forcing the batch-end recheck/propagation path. The server drains
/// events in whatever batches the worker pool happens to form, the
/// offline monitor sees one batch — final verdicts must not care.
#[test]
fn exhausted_engines_agree_under_arbitrary_batching() {
    let work = simulator_work(32);
    let cfg = ServeConfig {
        monitor: MonitorConfig {
            max_frontier_states: 4,
            ..MonitorConfig::default()
        },
        ..ServeConfig::default()
    };
    assert_serve_matches_offline(&work, cfg, 2);
}

/// 1000+ concurrent sessions on loopback (the acceptance floor), each
/// a small litmus trace so the debug-build run stays quick. All
/// sessions are opened before any closes, so the peak session count is
/// the full thousand.
#[test]
fn thousand_sessions_agree_with_offline() {
    let suite = litmus_suite();
    let work: Vec<(String, Trace)> = (0..1024)
        .map(|i| {
            let t = &suite[i % suite.len()];
            (format!("k{i}"), Trace::from_history(&t.history))
        })
        .collect();
    let cfg = ServeConfig {
        max_sessions: 2048,
        ..ServeConfig::default()
    };
    let models = cfg.models.clone();
    let mon_cfg = cfg.monitor.clone();
    let server = Server::start(cfg).expect("server start");
    // A single connection opens all 1024 sessions before streaming any
    // events, so the peak concurrent-session count is deterministic
    // (multiple connections race OPENs against CLOSEs).
    let lg = LoadgenConfig {
        addr: server.addr().to_string(),
        conns: 1,
        query_every: 4,
        shutdown: false,
    };
    let report = loadgen::run(&lg, &work).expect("loadgen run");
    let stats = server.stats_line();
    assert!(
        stats.contains("peak=1024"),
        "expected peak=1024 concurrent sessions in `{stats}`"
    );
    let mismatches = loadgen::verify(&work, &report, &models, &mon_cfg);
    assert!(
        mismatches.is_empty(),
        "{} of 1024 sessions disagree:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
    server.shutdown();
}

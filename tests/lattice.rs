//! Figure 5 as an integration test: the inclusion lattice of the five
//! paper models, recomputed empirically over the exhaustive universe of
//! small histories plus the litmus corpus.

use smc_core::checker::CheckConfig;
use smc_core::histgen::{all_histories, GenParams};
use smc_core::lattice::{compare, LatticeResult};
use smc_core::models;
use smc_history::History;
use smc_programs::corpus::litmus_suite;

fn build() -> (LatticeResult, Vec<History>) {
    let mut corpus: Vec<History> = litmus_suite()
        .into_iter()
        .map(|t| t.history)
        .filter(|h| !h.has_labeled_ops())
        .collect();
    corpus.extend(all_histories(&GenParams {
        procs: 2,
        ops_per_proc: 2,
        locs: 2,
        values: 1,
    }));
    let models = models::figure5_models();
    let result = compare(&corpus, &models, &CheckConfig::default());
    (result, corpus)
}

#[test]
fn figure5_lattice_holds_empirically() {
    let (r, corpus) = build();
    assert_eq!(r.undecided, 0, "budget too small for the corpus");
    let idx = |n: &str| r.model_names.iter().position(|m| m == n).unwrap();
    let (sc, tso, pc, causal, pram) =
        (idx("SC"), idx("TSO"), idx("PC"), idx("Causal"), idx("PRAM"));

    // Strict chain SC ⊂ TSO ⊂ PC ⊂ PRAM.
    assert!(r.strictly_stronger(sc, tso));
    assert!(r.strictly_stronger(tso, pc));
    assert!(r.strictly_stronger(pc, pram));
    // Strict chain SC ⊂ TSO ⊂ Causal ⊂ PRAM.
    assert!(r.strictly_stronger(tso, causal));
    assert!(r.strictly_stronger(causal, pram));
    // PC and causal are incomparable (Section 4).
    assert!(r.incomparable(pc, causal));

    // Admitted-set sizes are monotone along the chains.
    assert!(r.counts[sc] < r.counts[tso]);
    assert!(r.counts[tso] < r.counts[pc]);
    assert!(r.counts[tso] < r.counts[causal]);
    assert!(r.counts[pc] < r.counts[pram]);
    assert!(r.counts[causal] < r.counts[pram]);

    // Every separating witness is a real corpus index.
    for row in &r.separating {
        for w in row.iter().flatten() {
            assert!(*w < corpus.len());
        }
    }
}

#[test]
fn section7_extensions_slot_into_the_lattice() {
    let corpus = all_histories(&GenParams {
        procs: 2,
        ops_per_proc: 2,
        locs: 1,
        values: 2,
    });
    let models = vec![
        models::causal(),
        models::causal_coherent(),
        models::coherent(),
        models::pram(),
        models::pc(),
    ];
    let r = compare(&corpus, &models, &CheckConfig::default());
    assert_eq!(r.undecided, 0);
    let idx = |n: &str| r.model_names.iter().position(|m| m == n).unwrap();
    // CausalCoherent ⊆ Causal and ⊆ Coherent by construction.
    assert!(r.inclusion[idx("CausalCoherent")][idx("Causal")]);
    assert!(r.inclusion[idx("CausalCoherent")][idx("Coherent")]);
    // Causal ⊆ PRAM on any corpus.
    assert!(r.inclusion[idx("Causal")][idx("PRAM")]);
    // PC ⊆ Coherent (PC implies coherence).
    assert!(r.inclusion[idx("PC")][idx("Coherent")]);
}

#[test]
fn single_processor_histories_collapse_the_lattice() {
    // With one processor every model degenerates to sequential
    // semantics: all five models admit exactly the same histories.
    let corpus = all_histories(&GenParams {
        procs: 1,
        ops_per_proc: 3,
        locs: 2,
        values: 1,
    });
    let models = models::figure5_models();
    let r = compare(&corpus, &models, &CheckConfig::default());
    for a in 0..models.len() {
        for b in 0..models.len() {
            assert!(
                r.equivalent_on_corpus(a, b),
                "{} and {} differ on single-processor histories",
                r.model_names[a],
                r.model_names[b]
            );
        }
    }
}

//! The streaming monitor agrees with the batch checker.
//!
//! Each history is fed to a [`Monitor`] one event at a time; after the
//! last event the monitor's per-model verdict must match the batch
//! checker's verdict for every lattice model **whenever the batch
//! checker decides**. The monitor may legitimately decide via sound
//! inclusion-lattice propagation where a direct batch check would
//! exhaust its budget, so batch-undecided pairs are skipped rather than
//! required to be `Unknown`; the small histories here never hit a budget
//! in practice, so the skip is a safety valve, not a loophole.

use smc_core::batch::check_parallel;
use smc_core::checker::{CheckConfig, SchedulerKind};
use smc_core::models;
use smc_history::trace::Trace;
use smc_history::{History, HistoryBuilder};
use smc_monitor::{Monitor, MonitorConfig, TriVerdict};
use smc_prng::SmallRng;
use smc_programs::corpus::litmus_suite;
use smc_sim::sched::run_random;
use smc_sim::workload::{Access, OpScript};
use smc_sim::TsoMem;

fn assert_monitor_matches_batch(h: &History, jobs: usize, scheduler: SchedulerKind, ctx: &str) {
    let models = models::lattice_models();
    let check = CheckConfig {
        scheduler,
        ..CheckConfig::default().with_memo()
    };
    let mut mon = Monitor::new(
        models.clone(),
        MonitorConfig {
            check: check.clone(),
            jobs,
            ..MonitorConfig::default()
        },
    );
    mon.feed_trace(&Trace::from_history(h));
    // A fresh memo for the batch side, so neither run warms the other.
    let batch_cfg = CheckConfig {
        scheduler,
        ..CheckConfig::default().with_memo()
    };
    for (i, spec) in models.iter().enumerate() {
        let batch = check_parallel(h, spec, &batch_cfg, jobs).0.decided();
        let Some(batch_admits) = batch else { continue };
        let expected = if batch_admits {
            TriVerdict::Admitted
        } else {
            TriVerdict::Violated
        };
        assert_eq!(
            mon.verdicts()[i],
            expected,
            "{ctx}: monitor disagrees with batch on {} (jobs {jobs}, {scheduler:?})\n{h}",
            spec.name
        );
    }
}

fn corpus_agrees(jobs: usize) {
    for t in litmus_suite() {
        assert_monitor_matches_batch(
            &t.history,
            jobs,
            SchedulerKind::WorkStealing,
            t.name.as_str(),
        );
    }
}

#[test]
fn corpus_agrees_sequential() {
    corpus_agrees(1);
}

#[test]
fn corpus_agrees_two_jobs() {
    corpus_agrees(2);
}

#[test]
fn corpus_agrees_four_jobs() {
    corpus_agrees(4);
}

#[test]
fn corpus_agrees_static_prefix_scheduler() {
    for t in litmus_suite() {
        assert_monitor_matches_batch(&t.history, 2, SchedulerKind::StaticPrefix, t.name.as_str());
    }
}

const PROCS: [&str; 4] = ["p", "q", "r", "s"];
const LOCS: [&str; 3] = ["x", "y", "z"];

fn random_history(rng: &mut SmallRng) -> History {
    let mut b = HistoryBuilder::new();
    let threads = rng.gen_range(1..5usize);
    for proc in PROCS.iter().take(threads) {
        b.add_proc(proc);
        for _ in 0..rng.gen_range(0..6usize) {
            let loc = LOCS[rng.gen_range(0..LOCS.len())];
            let value = rng.gen_range(0..5i64);
            if rng.gen_bool(0.5) {
                b.write(proc, loc, value.max(1));
            } else {
                b.read(proc, loc, value);
            }
        }
    }
    b.build()
}

#[test]
fn random_histories_agree() {
    for case in 0..200u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(0x117_u64.wrapping_add(case)));
        let jobs = [1, 2, 4][case as usize % 3];
        let scheduler = if case % 2 == 0 {
            SchedulerKind::WorkStealing
        } else {
            SchedulerKind::StaticPrefix
        };
        assert_monitor_matches_batch(&h, jobs, scheduler, &format!("case {case}"));
    }
}

/// Headerless ingestion (the documented intern-on-first-use `feed`
/// path): no `declare_proc`/`declare_loc`, so processors and locations
/// appear mid-stream and force frontier rebuilds. After every event the
/// monitor's verdicts must agree with the batch checker on the prefix —
/// this is the regression gate for the rebuild-replay duplication bug,
/// which only bites when a name first appears mid-stream.
#[test]
fn headerless_event_by_event_agrees_per_prefix() {
    let models = models::lattice_models();
    let cfg = CheckConfig::default().with_memo();
    for case in 0..40u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(0xbeef_u64.wrapping_add(case)));
        let trace = Trace::from_history(&h);
        let mut mon = Monitor::new(models.clone(), MonitorConfig::default());
        for (n, ev) in trace.events().iter().enumerate() {
            mon.feed(
                trace.proc_name(ev.proc),
                ev.kind,
                trace.loc_name(ev.loc),
                ev.value.0,
                ev.label,
            );
            let prefix = mon.trace().history_of_prefix(n + 1);
            for (i, spec) in models.iter().enumerate() {
                let Some(batch_admits) = check_parallel(&prefix, spec, &cfg, 1).0.decided() else {
                    continue;
                };
                let expected = if batch_admits {
                    TriVerdict::Admitted
                } else {
                    TriVerdict::Violated
                };
                assert_eq!(
                    mon.verdicts()[i],
                    expected,
                    "case {case}, prefix {}: monitor disagrees with batch on {}\n{prefix}",
                    n + 1,
                    spec.name
                );
            }
        }
    }
}

/// A machine-produced arrival-order trace (the live-monitoring input
/// path): feed the simulator's event stream, then cross-check against
/// the batch checker on the recorded history.
#[test]
fn simulator_traces_agree() {
    let script = OpScript::new(
        vec![
            vec![Access::write(0, 1), Access::read(1)],
            vec![Access::write(1, 1), Access::read(0)],
            vec![Access::read(0), Access::read(1)],
        ],
        2,
    );
    for seed in 0..20u64 {
        let out = run_random(TsoMem::new(3, 2), script.clone(), seed, 200_000);
        assert!(out.completed, "seed {seed}: run did not drain");
        assert_eq!(
            out.trace.history(),
            out.history,
            "seed {seed}: recorded trace and history diverged"
        );
        // Feed the arrival-order stream (not the proc-major
        // linearization) — the verdict over the completed run must not
        // depend on the interleaving the monitor happened to observe.
        let models = models::lattice_models();
        let mut mon = Monitor::new(models.clone(), MonitorConfig::default());
        mon.feed_trace(&out.trace);
        let batch_cfg = CheckConfig::default().with_memo();
        for (i, spec) in models.iter().enumerate() {
            let Some(batch_admits) = check_parallel(&out.history, spec, &batch_cfg, 1)
                .0
                .decided()
            else {
                continue;
            };
            let expected = if batch_admits {
                TriVerdict::Admitted
            } else {
                TriVerdict::Violated
            };
            assert_eq!(
                mon.verdicts()[i],
                expected,
                "sim seed {seed}: monitor disagrees with batch on {}\n{}",
                spec.name,
                out.history
            );
        }
    }
}

//! Every expectation embedded in the litmus corpus, checked against the
//! decision procedure, with every `Allowed` witness independently
//! verified. This is the executable form of the paper's Sections 3–5
//! claims about which model admits which execution.

use smc_core::checker::{check_with_config, CheckConfig, Verdict};
use smc_core::models;
use smc_core::verify::verify_witness;
use smc_programs::corpus::litmus_suite;

#[test]
fn all_corpus_expectations_hold() {
    let cfg = CheckConfig::default();
    let mut checked = 0;
    for t in litmus_suite() {
        for (model_name, expected) in &t.expectations {
            let spec = models::by_name(model_name)
                .unwrap_or_else(|| panic!("{}: unknown model {model_name}", t.name));
            let verdict = check_with_config(&t.history, &spec, &cfg);
            match &verdict {
                Verdict::Allowed(w) => {
                    verify_witness(&t.history, &spec, w).unwrap_or_else(|e| {
                        panic!(
                            "{} × {}: witness failed verification: {e}",
                            t.name, spec.name
                        )
                    });
                }
                Verdict::Disallowed => {}
                other => panic!("{} × {}: undecided {other:?}", t.name, spec.name),
            }
            assert_eq!(
                verdict.decided(),
                Some(*expected),
                "{} × {}: expected {}, got {:?}\n{}",
                t.name,
                spec.name,
                expected,
                verdict.decided(),
                t.history
            );
            checked += 1;
        }
    }
    // Guard against the corpus silently shrinking.
    assert!(checked >= 140, "only {checked} expectations checked");
}

#[test]
fn corpus_verdicts_respect_known_strength_order() {
    // If a model pair (stronger, weaker) is in Figure 5's lattice, then
    // every corpus history admitted by the stronger must be admitted by
    // the weaker.
    let pairs = [
        ("SC", "TSO"),
        ("SC", "PC"),
        ("SC", "PRAM"),
        ("SC", "Causal"),
        ("TSO", "PC"),
        ("TSO", "Causal"),
        ("TSO", "PRAM"),
        ("PC", "PRAM"),
        ("Causal", "PRAM"),
        ("CausalCoherent", "Causal"),
        ("PC", "Coherent"),
    ];
    let cfg = CheckConfig::default();
    for t in litmus_suite() {
        if t.history.has_labeled_ops() {
            continue;
        }
        for (a, b) in pairs {
            let strong = check_with_config(&t.history, &models::by_name(a).unwrap(), &cfg);
            let weak = check_with_config(&t.history, &models::by_name(b).unwrap(), &cfg);
            if strong.is_allowed() {
                assert!(
                    weak.is_allowed(),
                    "{}: {a} admits but {b} forbids — breaks {a} ⊆ {b}\n{}",
                    t.name,
                    t.history
                );
            }
        }
    }
}

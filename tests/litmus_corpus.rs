//! Every expectation embedded in the litmus corpus, checked against the
//! decision procedure, with every `Allowed` witness independently
//! verified. This is the executable form of the paper's Sections 3–5
//! claims about which model admits which execution.

use smc_core::checker::{check_with_config, CheckConfig, Verdict};
use smc_core::models;
use smc_core::verify::verify_witness;
use smc_programs::corpus::litmus_suite;

#[test]
fn all_corpus_expectations_hold() {
    let cfg = CheckConfig::default();
    let mut checked = 0;
    for t in litmus_suite() {
        for (model_name, expected) in &t.expectations {
            let spec = models::by_name(model_name)
                .unwrap_or_else(|| panic!("{}: unknown model {model_name}", t.name));
            let verdict = check_with_config(&t.history, &spec, &cfg);
            match &verdict {
                Verdict::Allowed(w) => {
                    verify_witness(&t.history, &spec, w).unwrap_or_else(|e| {
                        panic!(
                            "{} × {}: witness failed verification: {e}",
                            t.name, spec.name
                        )
                    });
                }
                Verdict::Disallowed => {}
                other => panic!("{} × {}: undecided {other:?}", t.name, spec.name),
            }
            assert_eq!(
                verdict.decided(),
                Some(*expected),
                "{} × {}: expected {}, got {:?}\n{}",
                t.name,
                spec.name,
                expected,
                verdict.decided(),
                t.history
            );
            checked += 1;
        }
    }
    // Guard against the corpus silently shrinking.
    assert!(checked >= 140, "only {checked} expectations checked");
}

#[test]
fn separation_witness_files_check_out() {
    // The machine-found witnesses committed by
    // `smc separate --all --emit-dir litmus/separations` carry
    // expectations for both models of each pair; every one must hold.
    let dir = format!("{}/../../litmus/separations", env!("CARGO_MANIFEST_DIR"));
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("litmus/separations exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "litmus"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 20,
        "only {} separation files",
        entries.len()
    );
    let cfg = CheckConfig::default();
    let mut checked = 0;
    for path in entries {
        let text = std::fs::read_to_string(&path).unwrap();
        let suite = smc_history::litmus::parse_suite(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(!suite.is_empty(), "{}: empty suite", path.display());
        for t in suite {
            assert_eq!(t.expectations.len(), 2, "{}: {}", path.display(), t.name);
            for (model_name, expected) in &t.expectations {
                let spec = models::by_name(model_name).unwrap();
                let verdict = check_with_config(&t.history, &spec, &cfg);
                if let Verdict::Allowed(w) = &verdict {
                    verify_witness(&t.history, &spec, w)
                        .unwrap_or_else(|e| panic!("{} × {}: {e}", t.name, spec.name));
                }
                assert_eq!(
                    verdict.decided(),
                    Some(*expected),
                    "{}: {} × {}\n{}",
                    path.display(),
                    t.name,
                    spec.name,
                    t.history
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked >= 60,
        "only {checked} separation expectations checked"
    );
}

#[test]
fn corpus_verdicts_respect_known_strength_order() {
    // If a model pair (stronger, weaker) is in Figure 5's lattice, then
    // every corpus history admitted by the stronger must be admitted by
    // the weaker.
    let pairs = [
        ("SC", "TSO"),
        ("SC", "PC"),
        ("SC", "PRAM"),
        ("SC", "Causal"),
        ("TSO", "PC"),
        ("TSO", "Causal"),
        ("TSO", "PRAM"),
        ("PC", "PRAM"),
        ("Causal", "PRAM"),
        ("CausalCoherent", "Causal"),
        ("PC", "Coherent"),
    ];
    let cfg = CheckConfig::default();
    for t in litmus_suite() {
        if t.history.has_labeled_ops() {
            continue;
        }
        for (a, b) in pairs {
            let strong = check_with_config(&t.history, &models::by_name(a).unwrap(), &cfg);
            let weak = check_with_config(&t.history, &models::by_name(b).unwrap(), &cfg);
            if strong.is_allowed() {
                assert!(
                    weak.is_allowed(),
                    "{}: {a} admits but {b} forbids — breaks {a} ⊆ {b}\n{}",
                    t.name,
                    t.history
                );
            }
        }
    }
}

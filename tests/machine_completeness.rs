//! Machine completeness: the converse of the soundness cross-validation.
//!
//! For a fixed program shape, enumerate **every** value assignment to its
//! reads, keep the histories the declarative model admits, and require
//! the operational machine to reach each of them under some schedule.
//! Together with `sim_crossval.rs` (machine ⊆ model) this pins the
//! machine's reachable set to *exactly* the model's admitted set on these
//! shapes — the strongest operational/declarative agreement we can test.
//!
//! Models that admit value-from-the-future behaviour no machine exhibits
//! (the paper's PC admits load buffering, see EXPERIMENTS.md) are
//! necessarily incomplete and excluded here.

use smc_core::checker::{check_with_config, CheckConfig};
use smc_core::models;
use smc_core::spec::ModelSpec;
use smc_history::{History, HistoryBuilder, Label, OpKind, Value};
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::mem::MemorySystem;
use smc_sim::workload::{Access, OpScript};
use smc_sim::{CausalMem, PramMem, ScMem, TsoMem};

/// The shapes under test: `(name, per-thread accesses, num_locs)`.
fn shapes() -> Vec<(&'static str, Vec<Vec<Access>>, usize)> {
    vec![
        (
            "store-buffering",
            vec![
                vec![Access::write(0, 1), Access::read(1)],
                vec![Access::write(1, 1), Access::read(0)],
            ],
            2,
        ),
        (
            "message-passing",
            vec![
                vec![Access::write(0, 1), Access::write(1, 1)],
                vec![Access::read(1), Access::read(0)],
            ],
            2,
        ),
        (
            "write-exchange",
            vec![
                vec![Access::write(0, 1), Access::read(0)],
                vec![Access::write(0, 2), Access::read(0)],
            ],
            1,
        ),
        (
            "coherence",
            vec![
                vec![Access::write(0, 1), Access::write(0, 2)],
                vec![Access::read(0), Access::read(0)],
            ],
            1,
        ),
    ]
}

/// Every history obtainable from the shape by assigning each read a value
/// in `{0} ∪ {values written to its location}`.
fn all_outcomes(threads: &[Vec<Access>], num_locs: usize) -> Vec<History> {
    let mut written: Vec<Vec<i64>> = vec![vec![0]; num_locs];
    for t in threads {
        for a in t {
            if a.kind == OpKind::Write {
                written[a.loc.index()].push(a.value.0);
            }
        }
    }
    // Flatten read slots.
    let slots: Vec<(usize, usize)> = threads
        .iter()
        .enumerate()
        .flat_map(|(t, ops)| {
            ops.iter()
                .enumerate()
                .filter(|(_, a)| a.kind == OpKind::Read)
                .map(move |(i, _)| (t, i))
        })
        .collect();
    let mut out = Vec::new();
    let mut choice = vec![0usize; slots.len()];
    loop {
        let mut b = HistoryBuilder::new();
        for (t, ops) in threads.iter().enumerate() {
            let pname = format!("p{t}");
            b.add_proc(&pname);
            for (i, a) in ops.iter().enumerate() {
                let lname = format!("x{}", a.loc.index());
                match a.kind {
                    OpKind::Write => b.push(&pname, OpKind::Write, &lname, a.value, a.label),
                    OpKind::Read => {
                        let slot = slots.iter().position(|&s| s == (t, i)).unwrap();
                        let v = written[a.loc.index()][choice[slot]];
                        b.push(&pname, OpKind::Read, &lname, Value(v), Label::Ordinary)
                    }
                }
            }
        }
        out.push(b.build());
        // Odometer over read-value choices.
        let mut i = 0;
        loop {
            if i == slots.len() {
                return out;
            }
            choice[i] += 1;
            let (t, op) = slots[i];
            let loc = threads[t][op].loc.index();
            if choice[i] < written[loc].len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

fn assert_complete<M: MemorySystem>(make: impl Fn() -> M, spec: &ModelSpec) {
    let cfg = CheckConfig::default();
    for (name, threads, num_locs) in shapes() {
        let script = OpScript::new(threads.clone(), num_locs);
        let reached: std::collections::HashSet<String> =
            explore(&make(), &script, &ExploreConfig::default())
                .histories
                .iter()
                .map(History::to_string)
                .collect();
        for h in all_outcomes(&threads, num_locs) {
            if check_with_config(&h, spec, &cfg).is_allowed() {
                assert!(
                    reached.contains(&h.to_string()),
                    "{} model admits an outcome the {} machine never reaches \
                     on `{name}`:\n{h}",
                    spec.name,
                    make().name()
                );
            }
        }
    }
}

#[test]
fn sc_machine_complete() {
    assert_complete(|| ScMem::new(2, 2), &models::sc());
}

#[test]
fn tso_machine_complete() {
    // The no-forwarding store-buffer machine realizes exactly the
    // paper's TSO on these shapes.
    assert_complete(|| TsoMem::new(2, 2), &models::tso());
}

#[test]
fn pram_machine_complete() {
    assert_complete(|| PramMem::new(2, 2), &models::pram());
}

#[test]
fn causal_machine_complete() {
    assert_complete(|| CausalMem::new(2, 2), &models::causal());
}

#[test]
fn outcome_enumeration_counts() {
    // Sanity of the generator itself: SB has 2 reads × 2 candidate
    // values; coherence shape has 2 reads × 3 candidates.
    let (_, sb, locs) = &shapes()[0];
    assert_eq!(all_outcomes(sb, *locs).len(), 4);
    let (_, coh, locs) = &shapes()[3];
    assert_eq!(all_outcomes(coh, *locs).len(), 9);
}

/// Brute-force SC oracle: a history is SC iff some interleaving of the
/// per-processor sequences is legal. Implemented without any of the
/// checker's machinery (no relations, no memoization) and compared
/// against the checker over the full 1296-history universe.
mod sc_oracle {
    use smc_core::checker::check_with_config;
    use smc_core::histgen::{all_histories, GenParams};
    use smc_core::models;
    use smc_history::{History, ProcId, Value};

    fn legal_interleaving_exists(h: &History, pcs: &mut Vec<usize>, mem: &mut Vec<Value>) -> bool {
        if (0..h.num_procs()).all(|p| pcs[p] == h.proc_ops(ProcId(p as u32)).len()) {
            return true;
        }
        for p in 0..h.num_procs() {
            let ops = h.proc_ops(ProcId(p as u32));
            if pcs[p] >= ops.len() {
                continue;
            }
            let o = &ops[pcs[p]];
            if o.is_write() {
                let saved = mem[o.loc.index()];
                mem[o.loc.index()] = o.value;
                pcs[p] += 1;
                if legal_interleaving_exists(h, pcs, mem) {
                    return true;
                }
                pcs[p] -= 1;
                mem[o.loc.index()] = saved;
            } else if mem[o.loc.index()] == o.value {
                pcs[p] += 1;
                if legal_interleaving_exists(h, pcs, mem) {
                    return true;
                }
                pcs[p] -= 1;
            }
        }
        false
    }

    #[test]
    fn checker_agrees_with_brute_force_on_the_universe() {
        let spec = models::sc();
        let cfg = smc_core::checker::CheckConfig::default();
        for h in all_histories(&GenParams {
            procs: 2,
            ops_per_proc: 2,
            locs: 2,
            values: 1,
        }) {
            let mut pcs = vec![0; h.num_procs()];
            let mut mem = vec![Value::INITIAL; h.num_locs()];
            let oracle = legal_interleaving_exists(&h, &mut pcs, &mut mem);
            let checker = check_with_config(&h, &spec, &cfg).is_allowed();
            assert_eq!(oracle, checker, "oracle and checker disagree on\n{h}");
        }
    }
}

#[test]
fn pc_machine_is_necessarily_incomplete() {
    // Load buffering is admitted by the paper's PC but cannot be produced
    // by any machine that reads present values — the documented gap
    // between the declarative definition and operational intuition.
    use smc_sim::PcMem;
    let threads = vec![
        vec![Access::read(0), Access::write(1, 1)],
        vec![Access::read(1), Access::write(0, 1)],
    ];
    let script = OpScript::new(threads.clone(), 2);
    let reached: std::collections::HashSet<String> =
        explore(&PcMem::new(2, 2), &script, &ExploreConfig::default())
            .histories
            .iter()
            .map(History::to_string)
            .collect();
    let lb = "p0: r(x0)1 w(x1)1\np1: r(x1)1 w(x0)1\n";
    let h = smc_history::litmus::parse_history("p0: r(x0)1 w(x1)1\np1: r(x1)1 w(x0)1").unwrap();
    assert!(check_with_config(&h, &models::pc(), &CheckConfig::default()).is_allowed());
    assert!(
        !reached.contains(lb),
        "a machine read a value from the future"
    );
}

//! Regression tests for the separation search engine: `smc separate`
//! must rediscover the paper's model-separation witnesses inside small
//! universes, and every witness it reports must be checkable, litmus
//! round-trippable, and op-deletion minimal.

use smc_core::checker::{check_with_stats, CheckConfig, SchedulerKind};
use smc_core::histgen::GenParams;
use smc_core::separate::{separate, without_op, DirectionStatus, SeparationWitness};
use smc_core::{models, ModelSpec};
use smc_history::litmus::{emit_litmus, parse_history};

fn gp(procs: usize, ops: usize, locs: usize, values: i64) -> GenParams {
    GenParams {
        procs,
        ops_per_proc: ops,
        locs,
        values,
    }
}

/// The witness must be admitted by one model and refuted by the other,
/// under both schedulers, and it must survive a litmus round trip.
fn assert_separates(w: &SeparationWitness, admits: &ModelSpec, refutes: &ModelSpec) {
    for scheduler in [SchedulerKind::WorkStealing, SchedulerKind::StaticPrefix] {
        let cfg = CheckConfig {
            scheduler,
            ..CheckConfig::default()
        };
        let (va, _) = check_with_stats(&w.history, admits, &cfg);
        let (vr, _) = check_with_stats(&w.history, refutes, &cfg);
        assert!(
            va.is_allowed(),
            "{} must admit ({scheduler:?}):\n{}",
            admits.name,
            w.history
        );
        assert!(
            vr.is_disallowed(),
            "{} must refute ({scheduler:?}):\n{}",
            refutes.name,
            w.history
        );
    }
    let back = parse_history(&emit_litmus(&w.history)).expect("witness parses back");
    assert_eq!(back, w.history, "litmus round trip changed the witness");
}

/// A minimized witness must stop separating when any single op is
/// removed (greedy op-deletion minimality).
fn assert_op_minimal(w: &SeparationWitness, admits: &ModelSpec, refutes: &ModelSpec) {
    assert!(w.minimized);
    let cfg = CheckConfig::default();
    for idx in 0..w.history.num_ops() {
        let smaller = without_op(&w.history, idx);
        assert!(
            !smc_core::separates(&smaller, admits, refutes, &cfg),
            "witness still separates {} / {} after deleting op {idx}:\n{}",
            admits.name,
            refutes.name,
            w.history
        );
    }
}

fn direction<'a>(
    sep: &'a smc_core::Separator,
    admits: &str,
    refutes: &str,
) -> &'a smc_core::Direction {
    sep.directions()
        .iter()
        .find(|d| sep.models()[d.admits].name == admits && sep.models()[d.refutes].name == refutes)
        .unwrap_or_else(|| panic!("no direction {admits} admits / {refutes} refutes"))
}

fn found(sep: &smc_core::Separator, admits: &str, refutes: &str) -> SeparationWitness {
    match &direction(sep, admits, refutes).status {
        DirectionStatus::Found(w) => w.clone(),
        other => panic!("{admits} admits / {refutes} refutes: expected witness, got {other:?}"),
    }
}

#[test]
fn rediscovers_sc_vs_causal_witness() {
    let models = vec![models::sc(), models::causal()];
    let universes = vec![gp(2, 1, 1, 1), gp(2, 2, 1, 1), gp(2, 2, 2, 1)];
    let sep = separate(models.clone(), &universes, CheckConfig::default(), 2);
    // SC ⊆ Causal: that direction must be marked impossible, not searched.
    let d = direction(&sep, "SC", "Causal");
    assert!(matches!(d.status, DirectionStatus::Impossible));
    let w = found(&sep, "Causal", "SC");
    assert_separates(&w, &models[1], &models[0]);
    assert_op_minimal(&w, &models[1], &models[0]);
    // Causal already splits from SC with one location and two ops.
    assert!(w.history.num_ops() <= 4, "{}", w.history);
}

#[test]
fn rediscovers_tso_vs_sc_store_buffering() {
    let models = vec![models::tso(), models::sc()];
    let universes = vec![gp(2, 2, 2, 1)];
    let sep = separate(models.clone(), &universes, CheckConfig::default(), 2);
    let w = found(&sep, "TSO", "SC");
    assert_separates(&w, &models[0], &models[1]);
    assert_op_minimal(&w, &models[0], &models[1]);
    // The minimal TSO/SC separation is the 4-op store-buffering shape of
    // the paper's Figure 1.
    assert_eq!(w.history.num_ops(), 4, "{}", w.history);
    assert_eq!(emit_litmus(&w.history), "p: w(x)1 r(y)0\nq: w(y)1 r(x)0\n");
}

#[test]
fn rediscovers_dash_goodman_incomparability() {
    // The acceptance case: PC (DASH) and PCG (Goodman) are incomparable,
    // and both witnessing directions exist within {3 procs, 3 ops,
    // 2 locs, 2 values}.
    let models = vec![models::pc(), models::pc_goodman()];
    let universes: Vec<GenParams> = smc_core::separate::full_ladder()
        .into_iter()
        .filter(|p| p.procs <= 3 && p.ops_per_proc <= 3 && p.locs <= 2 && p.values <= 2)
        .collect();
    let sep = separate(models.clone(), &universes, CheckConfig::default(), 4);
    let w_pc = found(&sep, "PC", "PCG");
    let w_pcg = found(&sep, "PCG", "PC");
    assert_separates(&w_pc, &models[0], &models[1]);
    assert_separates(&w_pcg, &models[1], &models[0]);
    assert_op_minimal(&w_pc, &models[0], &models[1]);
    assert_op_minimal(&w_pcg, &models[1], &models[0]);
}

#[test]
fn separation_respects_known_inclusions() {
    // Sweep all unlabeled models over the small ladder; no direction
    // marked impossible by the lattice may ever acquire a witness, and
    // every witness found must actually separate.
    let models = models::lattice_models();
    let universes = vec![gp(2, 2, 1, 1), gp(2, 2, 2, 1)];
    let sep = separate(models.clone(), &universes, CheckConfig::default(), 4);
    let mut witnessed = 0;
    for d in sep.directions() {
        if let DirectionStatus::Found(w) = &d.status {
            assert_separates(w, &models[d.admits], &models[d.refutes]);
            witnessed += 1;
        }
    }
    // 2x2x2x1 already separates most of the lattice.
    assert!(witnessed >= 20, "only {witnessed} directions witnessed");
}

//! Equivalence of the exhaustive checker and the saturation engine.
//!
//! Properties, over the embedded litmus corpus, seeded random
//! histories, and every `litmus/separations/` suite:
//!
//! * on every model that advertises saturate support, wherever both
//!   engines *decide* (Allowed/Disallowed), they agree;
//! * every `Allowed` the saturation engine produces carries a witness
//!   that the independent verifier accepts;
//! * the saturation engine is never `Unsupported` on a model that
//!   `saturating_models()` lists;
//! * at 100+ operations the saturation engine decides histories on
//!   which the exhaustive engine blows its node budget;
//! * `EngineKind::Auto` routes by support + size, visible in
//!   `CheckStats::engine_used`.

use smc_bench::bighist::{sc_run, sc_run_aliased, stale_run};
use smc_core::checker::{check_with_stats, CheckConfig, Engine, EngineKind, Verdict};
use smc_core::models;
use smc_core::verify::verify_witness;
use smc_history::{History, HistoryBuilder};
use smc_prng::SmallRng;
use smc_programs::corpus::litmus_suite;

const PROCS: [&str; 3] = ["p", "q", "r"];
const LOCS: [&str; 2] = ["x", "y"];

fn random_history(rng: &mut SmallRng) -> History {
    let mut b = HistoryBuilder::new();
    for proc in PROCS.iter().take(rng.gen_range(1..4usize)) {
        b.add_proc(proc);
        for _ in 0..rng.gen_range(0..4usize) {
            let is_write = rng.gen_bool(0.5);
            let loc = LOCS[rng.gen_range(0..LOCS.len())];
            let v = rng.gen_range(0..3i64);
            if is_write {
                b.write(proc, loc, v.clamp(1, 2));
            } else {
                b.read(proc, loc, v);
            }
        }
    }
    b.build()
}

fn exhaustive_cfg() -> CheckConfig {
    CheckConfig {
        engine: EngineKind::Exhaustive,
        ..CheckConfig::default()
    }
}

fn saturate_cfg() -> CheckConfig {
    CheckConfig {
        engine: EngineKind::Saturate,
        // Forcing the engine must work at any size; the cutover only
        // matters for Auto.
        ..CheckConfig::default()
    }
}

/// Run both engines on (h, spec) and assert the equivalence contract.
fn assert_engines_agree(h: &History, spec: &smc_core::ModelSpec, tag: &str) {
    let (ex, _) = check_with_stats(h, spec, &exhaustive_cfg());
    let (sat, stats) = check_with_stats(h, spec, &saturate_cfg());
    assert_eq!(
        stats.engine_used,
        Engine::Saturate,
        "{tag} {}: forced saturate did not run",
        spec.name
    );
    if let Verdict::Unsupported(msg) = &sat {
        panic!(
            "{tag} {}: saturate refused a supported model: {msg}\n{h}",
            spec.name
        );
    }
    if let (Some(a), Some(b)) = (ex.decided(), sat.decided()) {
        assert_eq!(
            a, b,
            "{tag} {}: exhaustive {ex:?} vs saturate {sat:?}\n{h}",
            spec.name
        );
    }
    if let Verdict::Allowed(w) = &sat {
        verify_witness(h, spec, w)
            .unwrap_or_else(|e| panic!("{tag} {}: bad saturate witness: {e}\n{h}", spec.name));
    }
}

/// Corpus litmus tests: both engines agree on every saturate-supporting
/// model, and saturate witnesses verify.
#[test]
fn corpus_engines_agree() {
    for t in litmus_suite() {
        for spec in models::saturating_models() {
            assert_engines_agree(&t.history, &spec, &t.name);
        }
    }
}

/// 200 seeded random histories: both engines agree on every
/// saturate-supporting model.
#[test]
fn random_histories_engines_agree() {
    for seed in 3000..3200u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(seed));
        for spec in models::saturating_models() {
            assert_engines_agree(&h, &spec, &format!("seed {seed}"));
        }
    }
}

/// Every suite under `litmus/separations/`: both engines agree on every
/// saturate-supporting model, for every history in every suite.
#[test]
fn separation_suites_engines_agree() {
    let dir = format!("{}/../../litmus/separations", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {dir}: {e}"))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "litmus"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "no .litmus suites found in {dir}");
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap();
        let suite = smc_history::litmus::parse_suite(&text)
            .unwrap_or_else(|e| panic!("{}: parse error: {e}", path.display()));
        let file = path.file_name().unwrap().to_string_lossy().into_owned();
        for t in &suite {
            for spec in models::saturating_models() {
                assert_engines_agree(&t.history, &spec, &format!("{file}/{}", t.name));
            }
        }
    }
}

/// A 256-op SC-simulated trace with unique write values: the saturation
/// engine decides Allowed (with a verifying witness) under every
/// supported model — reads-from is forced, so this is pure propagation.
#[test]
fn big_trace_saturate_admits_sc_runs() {
    let h = sc_run(42, 4, 4, 256);
    assert_eq!(h.num_ops(), 256);
    for spec in models::saturating_models() {
        let (sat, stats) = check_with_stats(&h, &spec, &saturate_cfg());
        assert_eq!(stats.engine_used, Engine::Saturate);
        match &sat {
            Verdict::Allowed(w) => verify_witness(&h, &spec, w)
                .unwrap_or_else(|e| panic!("{}: bad big-trace witness: {e}", spec.name)),
            other => panic!(
                "{}: SC-simulated trace must be admitted, got {other:?}",
                spec.name
            ),
        }
        assert!(
            stats.saturation_steps > 0,
            "{}: saturation stats not reported",
            spec.name
        );
    }
}

/// The headline property: on a 256-op trace, models with a global store
/// order force the exhaustive engine through a factorial store-order
/// enumeration — it blows a 200k-node budget without deciding — while
/// the saturation engine derives the store order by propagation and
/// decides immediately.
#[test]
fn big_trace_saturate_decides_where_exhaustive_exhausts() {
    // Exhausting a smaller cap is the same assertion but cheaper; keep
    // debug tier-1 runs quick while release exercises the full budget.
    const CAP: u64 = if cfg!(debug_assertions) {
        40_000
    } else {
        200_000
    };
    let capped = CheckConfig {
        engine: EngineKind::Exhaustive,
        node_budget: CAP,
        ..CheckConfig::default()
    };

    // Admission side: a clean SC run checked under TSO.
    let h = sc_run(42, 4, 4, 256);
    let (ex, _) = check_with_stats(&h, &models::tso(), &capped);
    assert_eq!(
        ex,
        Verdict::Exhausted,
        "TSO store-order enumeration should overwhelm the exhaustive budget"
    );
    let (sat, stats) = check_with_stats(&h, &models::tso(), &saturate_cfg());
    assert_eq!(stats.engine_used, Engine::Saturate);
    match &sat {
        Verdict::Allowed(w) => verify_witness(&h, &models::tso(), w)
            .unwrap_or_else(|e| panic!("bad big-trace TSO witness: {e}")),
        other => panic!("SC run must be TSO-admissible, got {other:?}"),
    }

    // Refutation side: a stale-read inversion at the end of a 256-op
    // trace. Refuting it under TSO means exhausting the store orders;
    // the saturation engine reaches the contradiction by propagation
    // and rejects it under every supported model.
    let hs = stale_run(43, 4, 4, 256);
    let (ex, _) = check_with_stats(&hs, &models::tso(), &capped);
    assert_eq!(
        ex,
        Verdict::Exhausted,
        "refuting under TSO should overwhelm the exhaustive budget"
    );
    for spec in models::saturating_models() {
        let (sat, stats) = check_with_stats(&hs, &spec, &saturate_cfg());
        assert_eq!(stats.engine_used, Engine::Saturate);
        assert_eq!(
            sat,
            Verdict::Disallowed,
            "{}: stale-read trace must be rejected",
            spec.name
        );
    }
}

/// Value aliasing makes reads-from ambiguous; both engines still decide
/// mid-size aliased traces, and wherever both decide they must agree
/// (with verifying saturate witnesses).
#[test]
fn aliased_traces_engines_agree() {
    for ops in [48usize, 64, 96, 128] {
        let h = sc_run_aliased(45, 4, 4, ops, 3);
        assert_engines_agree(&h, &models::sc(), &format!("aliased {ops}"));
    }
}

/// `EngineKind::Auto` keeps small histories on the exhaustive engine,
/// sends big supported histories to saturation, and falls back to
/// exhaustive for models without saturate support.
#[test]
fn auto_routing_small_stays_exhaustive() {
    let auto = CheckConfig::default();
    assert_eq!(auto.engine, EngineKind::Auto);
    let small = random_history(&mut SmallRng::seed_from_u64(1));
    let (_, stats) = check_with_stats(&small, &models::sc(), &auto);
    assert_eq!(stats.engine_used, Engine::Exhaustive);
}

/// The auto cutover is model-aware: models with shared write structure
/// (a global store order or per-location coherence) saturate well even
/// on small traces, while structure-free models (SC, PRAM) pay
/// saturation overhead without the pruning payoff below ~32 ops and
/// stay exhaustive there.
#[test]
fn auto_routing_cutover_is_model_aware() {
    // Routing is decided before any search, so a small budget keeps the
    // exhaustive legs cheap without changing the decision under test.
    let capped = CheckConfig {
        node_budget: 20_000,
        ..CheckConfig::default()
    };
    let mid = sc_run(46, 3, 3, 24);
    assert_eq!(mid.num_ops(), 24);
    // 24 ops, structured model (TSO: global write order): saturate.
    let (_, stats) = check_with_stats(&mid, &models::tso(), &capped);
    assert_eq!(stats.engine_used, Engine::Saturate);
    // 24 ops, structure-free models: exhaustive below the higher cutoff.
    for spec in [models::sc(), models::pram()] {
        let (_, stats) = check_with_stats(&mid, &spec, &capped);
        assert_eq!(
            stats.engine_used,
            Engine::Exhaustive,
            "{}: structure-free model must stay exhaustive at 24 ops",
            spec.name
        );
    }
    // Past the structure-free cutoff even SC routes to saturation.
    let big = sc_run(46, 3, 3, 40);
    let (_, stats) = check_with_stats(&big, &models::sc(), &capped);
    assert_eq!(stats.engine_used, Engine::Saturate);
}

#[test]
fn auto_routing_big_supported_saturates() {
    let big = sc_run(44, 3, 3, 128);
    let (v, stats) = check_with_stats(&big, &models::sc(), &CheckConfig::default());
    assert_eq!(stats.engine_used, Engine::Saturate);
    assert!(v.is_allowed());
}

#[test]
fn auto_routing_big_unsupported_stays_exhaustive() {
    // PC has no saturate support: Auto must stay exhaustive even when
    // the history is large.
    let big = sc_run(44, 3, 3, 128);
    let capped = CheckConfig {
        node_budget: 50_000,
        ..CheckConfig::default()
    };
    let (_, stats) = check_with_stats(&big, &models::pc(), &capped);
    assert_eq!(stats.engine_used, Engine::Exhaustive);
}

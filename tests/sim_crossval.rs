//! Simulator ↔ checker cross-validation.
//!
//! Soundness: every history an operational machine can produce must be
//! admitted by the corresponding declarative model (the machine
//! *implements* the model). We enumerate machine histories exhaustively
//! for a family of small program shapes and check every one.
//!
//! The negative direction is spot-checked too: deliberately *wrong*
//! machines (SPARC-style TSO forwarding under the paper's TSO model;
//! non-FIFO delivery under PRAM) must produce at least one rejected
//! history — otherwise the tests above would be vacuous.

use smc_core::checker::{check_with_config, CheckConfig};
use smc_core::models;
use smc_core::spec::ModelSpec;
use smc_core::verify::verify_witness;
use smc_history::History;
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::mem::MemorySystem;
use smc_sim::workload::{Access, OpScript};
use smc_sim::{CausalMem, CoherentMem, PcMem, PramMem, RcMem, ScMem, SyncMode, TsoMem};

/// The program shapes driven over each machine.
fn shapes() -> Vec<(&'static str, OpScript)> {
    vec![
        (
            "store-buffering",
            OpScript::new(
                vec![
                    vec![Access::write(0, 1), Access::read(1)],
                    vec![Access::write(1, 1), Access::read(0)],
                ],
                2,
            ),
        ),
        (
            "message-passing",
            OpScript::new(
                vec![
                    vec![Access::write(0, 1), Access::write(1, 1)],
                    vec![Access::read(1), Access::read(0)],
                ],
                2,
            ),
        ),
        (
            "write-exchange (fig3 shape)",
            OpScript::new(
                vec![
                    vec![Access::write(0, 1), Access::read(0), Access::read(0)],
                    vec![Access::write(0, 2), Access::read(0), Access::read(0)],
                ],
                1,
            ),
        ),
        (
            "write-read causality (fig2 shape)",
            OpScript::new(
                vec![
                    vec![Access::write(0, 1)],
                    vec![Access::read(0), Access::write(1, 1)],
                    vec![Access::read(1), Access::read(0)],
                ],
                2,
            ),
        ),
        (
            "own-write reads (forwarding shape)",
            OpScript::new(
                vec![
                    vec![Access::write(0, 1), Access::read(0), Access::read(1)],
                    vec![Access::write(1, 1), Access::read(1), Access::read(0)],
                ],
                2,
            ),
        ),
        (
            "coherence (same-location writes)",
            OpScript::new(
                vec![
                    vec![Access::write(0, 1), Access::write(0, 2), Access::read(0)],
                    vec![Access::read(0), Access::read(0)],
                ],
                1,
            ),
        ),
    ]
}

fn machine_histories<M: MemorySystem>(mem: M, script: &OpScript) -> Vec<History> {
    let out = explore(&mem, script, &ExploreConfig::default());
    assert!(!out.truncated, "exploration truncated for {}", mem.name());
    assert!(out.violation.is_none());
    out.histories
}

/// Every machine history must be admitted by `spec`, with a verified
/// witness.
fn assert_sound<M: MemorySystem>(make: impl Fn() -> M, spec: &ModelSpec) {
    let cfg = CheckConfig::default();
    for (name, script) in shapes() {
        for h in machine_histories(make(), &script) {
            match check_with_config(&h, spec, &cfg) {
                smc_core::Verdict::Allowed(w) => {
                    verify_witness(&h, spec, &w).unwrap_or_else(|e| {
                        panic!("{}/{name}: witness invalid: {e}\n{h}", spec.name)
                    });
                }
                other => panic!(
                    "{} machine produced a history its model rejects ({other:?}) \
                     on shape `{name}`:\n{h}",
                    spec.name
                ),
            }
        }
    }
}

#[test]
fn sc_machine_sound() {
    assert_sound(|| ScMem::new(3, 2), &models::sc());
}

#[test]
fn tso_machine_sound() {
    assert_sound(|| TsoMem::new(3, 2), &models::tso());
}

#[test]
fn pram_machine_sound() {
    assert_sound(|| PramMem::new(3, 2), &models::pram());
}

#[test]
fn causal_machine_sound() {
    assert_sound(|| CausalMem::new(3, 2), &models::causal());
}

#[test]
fn pc_machine_sound() {
    assert_sound(|| PcMem::new(3, 2), &models::pc());
}

#[test]
fn coherent_machine_sound() {
    assert_sound(|| CoherentMem::new(3, 2), &models::coherent());
}

#[test]
fn machine_strength_matches_lattice() {
    // On each shape, the machines' history sets must nest like Figure 5:
    // SC ⊆ TSO ⊆ PC ⊆ PRAM and SC ⊆ Causal ⊆ PRAM.
    for (name, script) in shapes() {
        let keys = |hs: &[History]| {
            hs.iter()
                .map(History::to_string)
                .collect::<std::collections::HashSet<_>>()
        };
        let sc = keys(&machine_histories(ScMem::new(3, 2), &script));
        let tso = keys(&machine_histories(TsoMem::new(3, 2), &script));
        let pc = keys(&machine_histories(PcMem::new(3, 2), &script));
        let causal = keys(&machine_histories(CausalMem::new(3, 2), &script));
        let pram = keys(&machine_histories(PramMem::new(3, 2), &script));
        assert!(sc.is_subset(&tso), "SC ⊄ TSO on {name}");
        assert!(tso.is_subset(&pc), "TSO ⊄ PC on {name}");
        assert!(pc.is_subset(&pram), "PC ⊄ PRAM on {name}");
        assert!(sc.is_subset(&causal), "SC ⊄ Causal on {name}");
        assert!(causal.is_subset(&pram), "Causal ⊄ PRAM on {name}");
    }
}

// ---- Negative controls --------------------------------------------------

#[test]
fn forwarding_tso_machine_exceeds_paper_tso() {
    // SPARC-style store forwarding produces histories the paper's TSO
    // characterization rejects (the own-write reads shape).
    let cfg = CheckConfig::default();
    let spec = models::tso();
    let mut rejected = 0;
    for (_, script) in shapes() {
        for h in machine_histories(TsoMem::with_forwarding(3, 2), &script) {
            if check_with_config(&h, &spec, &cfg).is_disallowed() {
                rejected += 1;
            }
        }
    }
    assert!(
        rejected > 0,
        "the forwarding machine never escaped the paper's TSO — negative control failed"
    );
}

#[test]
fn coherent_machine_exceeds_pram() {
    // Arbitrary-order delivery breaks PRAM's per-source FIFO guarantee.
    let cfg = CheckConfig::default();
    let spec = models::pram();
    let mut rejected = 0;
    for (_, script) in shapes() {
        for h in machine_histories(CoherentMem::new(3, 2), &script) {
            if check_with_config(&h, &spec, &cfg).is_disallowed() {
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "non-FIFO delivery never escaped PRAM");
}

#[test]
fn pram_machine_exceeds_causal_and_pc() {
    // PRAM is strictly weaker than both causal memory and PC: the
    // machine must realize histories each of them rejects.
    let cfg = CheckConfig::default();
    let mut causal_rejected = 0;
    let mut pc_rejected = 0;
    for (_, script) in shapes() {
        for h in machine_histories(PramMem::new(3, 2), &script) {
            if check_with_config(&h, &models::causal(), &cfg).is_disallowed() {
                causal_rejected += 1;
            }
            if check_with_config(&h, &models::pc(), &cfg).is_disallowed() {
                pc_rejected += 1;
            }
        }
    }
    assert!(
        causal_rejected > 0,
        "PRAM machine stayed within causal memory"
    );
    assert!(pc_rejected > 0, "PRAM machine stayed within PC");
}

// ---- Release consistency ------------------------------------------------

fn rc_shapes() -> Vec<(&'static str, OpScript)> {
    vec![
        (
            "labeled handshake",
            OpScript::new(
                vec![
                    vec![Access::write(0, 1), Access::release(1, 1)],
                    vec![Access::acquire(1), Access::read(0)],
                ],
                2,
            ),
        ),
        (
            "labeled store-buffering",
            OpScript::new(
                vec![
                    vec![Access::release(0, 1), Access::acquire(1)],
                    vec![Access::release(1, 1), Access::acquire(0)],
                ],
                2,
            ),
        ),
        (
            "release then ordinary data",
            OpScript::new(
                vec![
                    vec![
                        Access::write(0, 1),
                        Access::release(1, 1),
                        Access::write(0, 2),
                    ],
                    vec![Access::acquire(1), Access::read(0), Access::read(0)],
                ],
                2,
            ),
        ),
    ]
}

#[test]
fn rc_sc_machine_sound() {
    let cfg = CheckConfig::default();
    let spec = models::rc_sc();
    for (name, script) in rc_shapes() {
        for h in machine_histories(RcMem::new(SyncMode::Sc, 2, 2), &script) {
            let v = check_with_config(&h, &spec, &cfg);
            assert!(
                v.is_allowed(),
                "RC_sc machine history rejected ({v:?}) on `{name}`:\n{h}"
            );
        }
    }
}

#[test]
fn rc_pc_machine_sound() {
    let cfg = CheckConfig::default();
    let spec = models::rc_pc();
    for (name, script) in rc_shapes() {
        for h in machine_histories(RcMem::new(SyncMode::Pc, 2, 2), &script) {
            let v = check_with_config(&h, &spec, &cfg);
            assert!(
                v.is_allowed(),
                "RC_pc machine history rejected ({v:?}) on `{name}`:\n{h}"
            );
        }
    }
}

#[test]
fn rc_pc_machine_exceeds_rc_sc() {
    // The RC_pc machine realizes labeled histories RC_sc forbids (the
    // labeled store-buffering shape).
    let cfg = CheckConfig::default();
    let spec = models::rc_sc();
    let mut rejected = 0;
    for (_, script) in rc_shapes() {
        for h in machine_histories(RcMem::new(SyncMode::Pc, 2, 2), &script) {
            if check_with_config(&h, &spec, &cfg).is_disallowed() {
                rejected += 1;
            }
        }
    }
    assert!(rejected > 0, "RC_pc machine stayed within RC_sc");
}

#[test]
fn wo_machine_sound() {
    // The weak-ordering machine stays within the WO model (and hence
    // within RC_sc) on all labeled shapes.
    let cfg = CheckConfig::default();
    let wo = models::weak_ordering();
    let rcsc = models::rc_sc();
    for (name, script) in rc_shapes() {
        for h in machine_histories(smc_sim::WoMem::new(2, 2), &script) {
            let v = check_with_config(&h, &wo, &cfg);
            assert!(
                v.is_allowed(),
                "WO machine escaped WO ({v:?}) on `{name}`:\n{h}"
            );
            assert!(check_with_config(&h, &rcsc, &cfg).is_allowed());
        }
    }
}

#[test]
fn hybrid_machine_sound() {
    let cfg = CheckConfig::default();
    let spec = models::hybrid();
    // Labeled shapes plus the ordinary shapes (hybrid handles both).
    for (name, script) in rc_shapes().into_iter().chain(shapes()) {
        for h in machine_histories(smc_sim::HybridMem::new(3, 2), &script) {
            let v = check_with_config(&h, &spec, &cfg);
            assert!(
                v.is_allowed(),
                "Hybrid machine escaped its model ({v:?}) on `{name}`:\n{h}"
            );
        }
    }
}

#[test]
fn lazy_rc_sc_machine_escapes_weak_ordering() {
    // The lazy-log RC_sc machine can let an ordinary write overtake the
    // release that precedes it — allowed by RC_sc, forbidden by WO. This
    // separates the two machines *operationally*, matching the
    // wo_release_fence corpus entry.
    let cfg = CheckConfig::default();
    let script = OpScript::new(
        vec![
            vec![Access::release(0, 1), Access::write(1, 1)],
            vec![Access::read(1), Access::acquire(0)],
        ],
        2,
    );
    let histories = machine_histories(RcMem::new(SyncMode::Sc, 2, 2), &script);
    let target = "p0: wl(x0)1 w(x1)1\np1: r(x1)1 rl(x0)0\n";
    assert!(
        histories.iter().any(|h| h.to_string() == target),
        "lazy RC_sc machine no longer reaches the overtaking history"
    );
    let h = histories.iter().find(|h| h.to_string() == target).unwrap();
    assert!(check_with_config(h, &models::rc_sc(), &cfg).is_allowed());
    assert!(check_with_config(h, &models::weak_ordering(), &cfg).is_disallowed());
    // And the WO machine cannot reach it.
    let wo_histories = machine_histories(smc_sim::WoMem::new(2, 2), &script);
    assert!(!wo_histories.iter().any(|h| h.to_string() == target));
}

//! The extension models (PC-Goodman, weak ordering, hybrid consistency,
//! the Section 7 memories) and their place in the lattice.

use smc_core::checker::{check, check_with_config, CheckConfig, Verdict};
use smc_core::histgen::{all_histories, GenParams};
use smc_core::lattice::compare;
use smc_core::models;
use smc_core::verify::verify_witness;
use smc_history::litmus::parse_history;
use smc_programs::corpus::litmus_suite;

#[test]
fn pc_goodman_relates_correctly() {
    // PC-Goodman = PRAM + coherence: SC ⊆ PCG ⊆ PRAM and PCG ⊆ Coherent,
    // strictly on a corpus with multi-writer locations.
    let mut corpus: Vec<_> = litmus_suite()
        .into_iter()
        .map(|t| t.history)
        .filter(|h| !h.has_labeled_ops())
        .collect();
    corpus.extend(all_histories(&GenParams {
        procs: 2,
        ops_per_proc: 2,
        locs: 1,
        values: 2,
    }));
    let ms = vec![
        models::sc(),
        models::pc(),
        models::pc_goodman(),
        models::pram(),
        models::coherent(),
    ];
    let r = compare(&corpus, &ms, &CheckConfig::default());
    assert_eq!(r.undecided, 0);
    let idx = |n: &str| r.model_names.iter().position(|m| m == n).unwrap();
    assert!(r.strictly_stronger(idx("SC"), idx("PCG")));
    assert!(r.strictly_stronger(idx("PCG"), idx("PRAM")));
    assert!(r.strictly_stronger(idx("PCG"), idx("Coherent")));
    // Section 3.3 says Goodman's PC and DASH's PC differ, and the corpus
    // carries witnesses both ways: `pcg_vs_pc` is PCG-allowed but
    // PC-refuted (DASH's rwb edge is load-bearing), while `cc_strict` is
    // PC-allowed but PCG-refuted (the full program order is). The two
    // definitions are incomparable.
    assert!(!r.inclusion[idx("PCG")][idx("PC")]);
    assert!(!r.inclusion[idx("PC")][idx("PCG")]);
}

#[test]
fn pc_goodman_forbids_what_pram_allows() {
    // Figure 3 (coherence violation) separates PCG from PRAM.
    let fig3 = parse_history("p: w(x)1 r(x)1 r(x)2\nq: w(x)2 r(x)2 r(x)1").unwrap();
    assert!(check(&fig3, &models::pram()).is_allowed());
    assert!(check(&fig3, &models::pc_goodman()).is_disallowed());
    // The forwarding history does NOT separate the two PC definitions
    // (legal views can delay the remote write, so both admit it); the
    // separating witnesses live in the corpus (`pcg_vs_pc`, `cc_strict`).
    let fwd = parse_history("p: w(x)1 r(x)1 r(y)0\nq: w(y)1 r(y)1 r(x)0").unwrap();
    assert!(check(&fwd, &models::pc_goodman()).is_allowed());
    assert!(check(&fwd, &models::pc()).is_allowed());
}

#[test]
fn weak_ordering_is_strictly_stronger_than_rc_sc() {
    let suite = litmus_suite();
    // On every labeled corpus history, WO allowing implies RC_sc allows.
    for t in &suite {
        let wo = check(&t.history, &models::weak_ordering());
        let rcsc = check(&t.history, &models::rc_sc());
        if wo.is_allowed() {
            assert!(rcsc.is_allowed(), "{}: WO admits but RC_sc forbids", t.name);
        }
    }
    // Strictness witness: an ordinary write overtaking its preceding
    // release is RC_sc-allowed but WO-forbidden.
    let h = parse_history("q: wl(s)1 w(d)1\np: r(d)1 rl(s)0").unwrap();
    assert!(check(&h, &models::rc_sc()).is_allowed());
    assert!(check(&h, &models::weak_ordering()).is_disallowed());
}

#[test]
fn hybrid_agreement_suffices_for_the_bakery_doorway() {
    // Hybrid consistency's strong-operation agreement already forbids the
    // Section 5 both-enter execution, like RC_sc and unlike RC_pc.
    let t = smc_programs::corpus::by_name("bakery_s5").unwrap();
    assert!(check(&t.history, &models::hybrid()).is_disallowed());
    assert!(check(&t.history, &models::rc_pc()).is_allowed());
}

#[test]
fn hybrid_is_very_weak_on_ordinary_operations() {
    // Without labels, hybrid keeps only the issuing processor's program
    // order: even per-source ordering of remote writes is lost.
    let coww = parse_history("p: w(x)1 w(x)2\nq: r(x)2 r(x)1").unwrap();
    assert!(check(&coww, &models::hybrid()).is_allowed());
    assert!(check(&coww, &models::pram()).is_disallowed());
    assert!(check(&coww, &models::coherent()).is_disallowed());
}

#[test]
fn hybrid_witnesses_verify() {
    let cfg = CheckConfig::default();
    for t in litmus_suite() {
        if let Verdict::Allowed(w) = check_with_config(&t.history, &models::hybrid(), &cfg) {
            verify_witness(&t.history, &models::hybrid(), &w)
                .unwrap_or_else(|e| panic!("{}: hybrid witness invalid: {e}", t.name));
        }
        if let Verdict::Allowed(w) = check_with_config(&t.history, &models::weak_ordering(), &cfg) {
            verify_witness(&t.history, &models::weak_ordering(), &w)
                .unwrap_or_else(|e| panic!("{}: WO witness invalid: {e}", t.name));
        }
        if let Verdict::Allowed(w) = check_with_config(&t.history, &models::pc_goodman(), &cfg) {
            verify_witness(&t.history, &models::pc_goodman(), &w)
                .unwrap_or_else(|e| panic!("{}: PCG witness invalid: {e}", t.name));
        }
    }
}

#[test]
fn strength_chain_wo_rcsc_rcpc_on_labeled_corpus() {
    // WO ⊆ RC_sc ⊆ RC_pc pointwise on every corpus history.
    for t in litmus_suite() {
        let wo = check(&t.history, &models::weak_ordering()).decided();
        let rcsc = check(&t.history, &models::rc_sc()).decided();
        let rcpc = check(&t.history, &models::rc_pc()).decided();
        if wo == Some(true) {
            assert_eq!(rcsc, Some(true), "{}: WO ⊄ RCsc", t.name);
        }
        if rcsc == Some(true) {
            assert_eq!(rcpc, Some(true), "{}: RCsc ⊄ RCpc", t.name);
        }
    }
}

//! The trace emitter is a true inverse of the trace parser: every
//! history in the shipped corpus and a few hundred random histories and
//! interleavings survive `parse_trace(emit_trace(t))` unchanged, the
//! reconstructed history matches the source, and emission is a fixed
//! point.

use smc_history::trace::{emit_trace, parse_trace, Trace};
use smc_history::{History, HistoryBuilder, Label, OpKind};
use smc_prng::SmallRng;
use smc_programs::corpus::litmus_suite;

#[test]
fn trace_round_trips_the_whole_corpus() {
    for t in litmus_suite() {
        let tr = Trace::from_history(&t.history);
        let text = emit_trace(&tr);
        let back = parse_trace(&text)
            .unwrap_or_else(|e| panic!("{}: emitted trace does not parse: {e}\n{text}", t.name));
        assert_eq!(back, tr, "{}: round trip changed the trace", t.name);
        assert_eq!(
            back.history(),
            t.history,
            "{}: trace history diverged from the source history",
            t.name
        );
        // And the emission of the reparse is a fixed point.
        assert_eq!(emit_trace(&back), text, "{}", t.name);
    }
}

const PROCS: [&str; 4] = ["p", "q", "r", "s"];
const LOCS: [&str; 3] = ["x", "y", "z"];

fn random_history(rng: &mut SmallRng) -> History {
    let mut b = HistoryBuilder::new();
    let threads = rng.gen_range(1..5usize);
    for proc in PROCS.iter().take(threads) {
        b.add_proc(proc);
        for _ in 0..rng.gen_range(0..6usize) {
            let loc = LOCS[rng.gen_range(0..LOCS.len())];
            let value = rng.gen_range(0..5i64);
            if rng.gen_bool(0.5) {
                b.write(proc, loc, value.max(1));
            } else {
                b.read(proc, loc, value);
            }
        }
    }
    b.build()
}

#[test]
fn trace_round_trips_random_histories() {
    for case in 0..200u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(0x117_u64.wrapping_add(case)));
        let tr = Trace::from_history(&h);
        let text = emit_trace(&tr);
        let back = parse_trace(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(back, tr, "case {case}: round trip changed the trace");
        assert_eq!(back.history(), h, "case {case}: history diverged");
    }
}

/// A trace with processors interleaved in random arrival order (what a
/// live monitor would observe), including labeled operations and
/// processors that never issue anything — both must survive the headers.
fn random_trace(rng: &mut SmallRng) -> Trace {
    let mut t = Trace::new();
    for proc in PROCS {
        t.add_proc(proc);
    }
    for _ in 0..rng.gen_range(0..12usize) {
        let proc = PROCS[rng.gen_range(0..PROCS.len())];
        let loc = LOCS[rng.gen_range(0..LOCS.len())];
        let value = rng.gen_range(0..5i64);
        let label = if rng.gen_bool(0.25) {
            Label::Labeled
        } else {
            Label::Ordinary
        };
        if rng.gen_bool(0.5) {
            t.push_named(proc, OpKind::Write, loc, value.max(1), label);
        } else {
            t.push_named(proc, OpKind::Read, loc, value, label);
        }
    }
    t
}

#[test]
fn trace_round_trips_random_interleavings() {
    for case in 0..200u64 {
        let t = random_trace(&mut SmallRng::seed_from_u64(0x711_u64.wrapping_add(case)));
        let text = emit_trace(&t);
        let back = parse_trace(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(back, t, "case {case}: round trip changed the trace");
        assert_eq!(
            emit_trace(&back),
            text,
            "case {case}: emit not a fixed point"
        );
    }
}

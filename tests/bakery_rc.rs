//! The Section 5 experiment as an integration test: Lamport's Bakery
//! algorithm distinguishes `RC_sc` from `RC_pc`.

use smc_core::checker::check;
use smc_core::models;
use smc_history::Label;
use smc_programs::bakery::bakery;
use smc_programs::corpus::by_name;
use smc_programs::interp::ProgramWorkload;
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::rc::{RcMem, SyncMode};
use smc_sim::sched::run_random;
use smc_sim::{ScMem, TsoMem};

fn explore_cfg() -> ExploreConfig {
    ExploreConfig {
        collect_histories: false,
        max_states: 3_000_000,
        ..Default::default()
    }
}

#[test]
fn bakery_correct_on_rc_sc_exhaustive() {
    let program = bakery(2, Label::Labeled);
    let w = ProgramWorkload::new(program.clone(), 12);
    let out = explore(
        &RcMem::new(SyncMode::Sc, 2, program.num_locs()),
        &w,
        &explore_cfg(),
    );
    assert!(
        out.violation.is_none(),
        "RC_sc broke the Bakery: {:?}",
        out.violation
    );
    assert!(
        !out.truncated,
        "state cap hit; result would be inconclusive"
    );
}

#[test]
fn bakery_violated_on_rc_pc() {
    let program = bakery(2, Label::Labeled);
    let w = ProgramWorkload::new(program.clone(), 12);
    let out = explore(
        &RcMem::new(SyncMode::Pc, 2, program.num_locs()),
        &w,
        &explore_cfg(),
    );
    let (msg, history) = out.violation.expect("RC_pc must break the Bakery");
    assert!(
        msg.contains("mutual exclusion") || msg.contains("overwritten"),
        "{msg}"
    );
    // The violating execution carries the telltale doorway pattern: both
    // processors took ticket 1.
    let rendered = history.to_string();
    assert!(
        rendered.contains("wl(number[0])1") && rendered.contains("wl(number[1])1"),
        "unexpected violating execution:\n{rendered}"
    );
}

#[test]
fn bakery_violated_on_rc_pc_random_schedules() {
    let program = bakery(2, Label::Labeled);
    let mut violations = 0;
    for seed in 0..300 {
        let w = ProgramWorkload::new(program.clone(), 200);
        let r = run_random(
            RcMem::new(SyncMode::Pc, 2, program.num_locs()),
            w,
            seed,
            100_000,
        );
        violations += r.violation.is_some() as usize;
    }
    assert!(violations > 0, "no violation in 300 random RC_pc runs");
}

#[test]
fn bakery_correct_on_rc_sc_random_schedules() {
    let program = bakery(2, Label::Labeled);
    for seed in 0..300 {
        let w = ProgramWorkload::new(program.clone(), 200);
        let r = run_random(
            RcMem::new(SyncMode::Sc, 2, program.num_locs()),
            w,
            seed,
            100_000,
        );
        assert!(r.violation.is_none(), "seed {seed}: {:?}", r.violation);
        assert!(r.completed, "seed {seed} did not complete");
    }
}

#[test]
fn unlabeled_bakery_breaks_even_on_tso() {
    // The store-buffer effect predates RC: without labels the Bakery
    // already fails on TSO, while SC keeps it correct.
    let program = bakery(2, Label::Ordinary);
    let w = ProgramWorkload::new(program.clone(), 12);
    let out = explore(&TsoMem::new(2, program.num_locs()), &w, &explore_cfg());
    assert!(
        out.violation.is_some(),
        "TSO should break the unlabeled Bakery"
    );

    let w = ProgramWorkload::new(program.clone(), 12);
    let out = explore(&ScMem::new(2, program.num_locs()), &w, &explore_cfg());
    assert!(out.violation.is_none(), "SC must keep the Bakery correct");
}

#[test]
fn section5_history_separates_the_models_declaratively() {
    let t = by_name("bakery_s5").expect("corpus entry exists");
    assert!(check(&t.history, &models::rc_pc()).is_allowed());
    assert!(check(&t.history, &models::rc_sc()).is_disallowed());
}

#[test]
fn violating_rc_pc_history_is_admitted_by_rc_pc_model() {
    // Close the loop: extract the machine's violating execution and
    // check it against the declarative RC_pc definition. Only the
    // labeled doorway portion is checked (the run stops mid-protocol at
    // the violation, and the checker needs the properly-labeled
    // discipline, which holds here by construction).
    let program = bakery(2, Label::Labeled);
    let w = ProgramWorkload::new(program.clone(), 12);
    let out = explore(
        &RcMem::new(SyncMode::Pc, 2, program.num_locs()),
        &w,
        &explore_cfg(),
    );
    let (_, history) = out.violation.expect("violation exists");
    let v = check(&history, &models::rc_pc());
    assert!(
        v.is_allowed(),
        "the RC_pc machine's own violating execution must be admitted by the \
         RC_pc model, got {v:?}:\n{history}"
    );
}

#[test]
fn three_processor_bakery_random_schedules() {
    // The Section 5 result is stated for n processors; check n = 3 under
    // random schedules on both machines.
    let program = bakery(3, Label::Labeled);
    let mut pc_violations = 0;
    for seed in 0..150 {
        let w = ProgramWorkload::new(program.clone(), 300);
        let r = run_random(
            RcMem::new(SyncMode::Sc, 3, program.num_locs()),
            w,
            seed,
            300_000,
        );
        assert!(
            r.violation.is_none(),
            "RC_sc n=3 seed {seed}: {:?}",
            r.violation
        );
        let w = ProgramWorkload::new(program.clone(), 300);
        let r = run_random(
            RcMem::new(SyncMode::Pc, 3, program.num_locs()),
            w,
            seed,
            300_000,
        );
        pc_violations += r.violation.is_some() as usize;
    }
    assert!(pc_violations > 0, "RC_pc never violated with n = 3");
}

#[test]
#[ignore = "stress: exhaustive RC_sc sweep at a higher spin bound (~minutes)"]
fn bakery_rc_sc_exhaustive_higher_bound() {
    let program = bakery(2, Label::Labeled);
    let w = ProgramWorkload::new(program.clone(), 16);
    let cfg = ExploreConfig {
        collect_histories: false,
        max_states: 50_000_000,
        ..Default::default()
    };
    let out = explore(&RcMem::new(SyncMode::Sc, 2, program.num_locs()), &w, &cfg);
    assert!(out.violation.is_none(), "{:?}", out.violation);
    assert!(!out.truncated);
}

#[test]
fn bakery_safe_on_wo_and_hybrid_machines_exhaustive() {
    // Both stronger synchronization designs keep the Bakery correct:
    // weak ordering trivially (it is stronger than RC_sc), and hybrid
    // consistency because agreement on the strong-operation order is all
    // the doorway needs.
    let program = bakery(2, Label::Labeled);
    let w = ProgramWorkload::new(program.clone(), 12);
    let out = explore(
        &smc_sim::WoMem::new(2, program.num_locs()),
        &w,
        &explore_cfg(),
    );
    assert!(
        out.violation.is_none(),
        "WO broke the Bakery: {:?}",
        out.violation
    );
    assert!(!out.truncated);

    let w = ProgramWorkload::new(program.clone(), 12);
    let out = explore(
        &smc_sim::HybridMem::new(2, program.num_locs()),
        &w,
        &explore_cfg(),
    );
    assert!(
        out.violation.is_none(),
        "Hybrid broke the Bakery: {:?}",
        out.violation
    );
    assert!(!out.truncated);
}

#[test]
fn unlabeled_bakery_breaks_on_every_replica_machine() {
    // Without labels, every machine that delays write propagation lets
    // both processors pass the doorway blind.
    let program = bakery(2, Label::Ordinary);
    for (name, out) in [
        (
            "PRAM",
            explore(
                &smc_sim::PramMem::new(2, program.num_locs()),
                &ProgramWorkload::new(program.clone(), 12),
                &explore_cfg(),
            ),
        ),
        (
            "PC",
            explore(
                &smc_sim::PcMem::new(2, program.num_locs()),
                &ProgramWorkload::new(program.clone(), 12),
                &explore_cfg(),
            ),
        ),
        (
            "Causal",
            explore(
                &smc_sim::CausalMem::new(2, program.num_locs()),
                &ProgramWorkload::new(program.clone(), 12),
                &explore_cfg(),
            ),
        ),
        (
            "Coherent",
            explore(
                &smc_sim::CoherentMem::new(2, program.num_locs()),
                &ProgramWorkload::new(program.clone(), 12),
                &explore_cfg(),
            ),
        ),
    ] {
        assert!(
            out.violation.is_some(),
            "{name} machine unexpectedly kept the unlabeled Bakery safe"
        );
    }
}

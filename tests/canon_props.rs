//! Properties of the canonicalization layer (`smc_core::canon`).
//!
//! Over random histories and random relabelings drawn from `smc-prng`:
//!
//! * canonicalization is idempotent — the canonical form of a canonical
//!   history is itself;
//! * the canonical key is invariant under bijective renamings of
//!   processors, locations, and per-location values (the symmetries the
//!   memo table collapses);
//! * canonicalization preserves verdicts, and witnesses translate between
//!   canonical and original coordinates without losing validity.

use smc_core::checker::{check_with_config, CheckConfig, Verdict};
use smc_core::verify::verify_witness;
use smc_core::{canonicalize, models};
use smc_history::{History, HistoryBuilder, ProcId};
use smc_prng::SmallRng;
use smc_programs::corpus::litmus_suite;

const PROCS: [&str; 4] = ["p", "q", "r", "s"];
const LOCS: [&str; 3] = ["x", "y", "z"];

fn random_history(rng: &mut SmallRng) -> History {
    let mut b = HistoryBuilder::new();
    for proc in PROCS.iter().take(rng.gen_range(1..5usize)) {
        b.add_proc(proc);
        for _ in 0..rng.gen_range(0..4usize) {
            let is_write = rng.gen_bool(0.5);
            let loc = LOCS[rng.gen_range(0..LOCS.len())];
            let v = rng.gen_range(0..3i64);
            if is_write {
                b.write(proc, loc, v.clamp(1, 2));
            } else {
                b.read(proc, loc, v);
            }
        }
    }
    b.build()
}

fn shuffle(items: &mut [usize], rng: &mut SmallRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        items.swap(i, j);
    }
}

/// Apply a random symmetry: permute the processor listing order, rename
/// processors and locations, and remap the non-initial values used at
/// each location through a random bijection (the initial value 0 is
/// fixed, as required for soundness).
fn relabel(h: &History, rng: &mut SmallRng) -> History {
    let mut proc_order: Vec<usize> = (0..h.num_procs()).collect();
    shuffle(&mut proc_order, rng);
    let mut loc_perm: Vec<usize> = (0..h.num_locs()).collect();
    shuffle(&mut loc_perm, rng);
    let loc_names: Vec<String> = (0..h.num_locs())
        .map(|l| format!("m{}", loc_perm[l]))
        .collect();

    let mut val_maps: Vec<Vec<(i64, i64)>> = vec![Vec::new(); h.num_locs()];
    for (l, map) in val_maps.iter_mut().enumerate() {
        let mut distinct: Vec<i64> = Vec::new();
        for o in h.ops() {
            if o.loc.index() == l && !o.value.is_initial() && !distinct.contains(&o.value.0) {
                distinct.push(o.value.0);
            }
        }
        let mut pool: Vec<usize> = (0..distinct.len() + 4).collect();
        shuffle(&mut pool, rng);
        *map = distinct
            .into_iter()
            .zip(pool.into_iter().map(|i| i as i64 + 1))
            .collect();
    }

    let mut b = HistoryBuilder::new();
    for (ni, &p) in proc_order.iter().enumerate() {
        let name = format!("n{ni}");
        b.add_proc(&name);
        for o in h.proc_ops(ProcId(p as u32)) {
            let v: i64 = if o.value.is_initial() {
                0
            } else {
                val_maps[o.loc.index()]
                    .iter()
                    .find(|(orig, _)| *orig == o.value.0)
                    .expect("value recorded above")
                    .1
            };
            b.push(&name, o.kind, &loc_names[o.loc.index()], v, o.label);
        }
    }
    b.build()
}

/// The canonical form of a canonical history is itself, over both the
/// litmus corpus and random histories.
#[test]
fn canonicalize_is_idempotent() {
    let mut subjects: Vec<History> = litmus_suite().into_iter().map(|t| t.history).collect();
    subjects.extend((0..64u64).map(|s| random_history(&mut SmallRng::seed_from_u64(s))));
    for h in &subjects {
        let c1 = canonicalize(h);
        let c2 = canonicalize(&c1.history);
        assert_eq!(c1.key, c2.key, "key drifted on re-canonicalization\n{h}");
        assert_eq!(c1.history, c2.history, "form drifted\n{h}");
    }
}

/// Random relabelings never change the canonical key or the canonical
/// history — the heart of memo-table soundness.
#[test]
fn canonical_key_is_permutation_invariant() {
    for seed in 0..96u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let h = random_history(&mut rng);
        let c = canonicalize(&h);
        for _ in 0..3 {
            let renamed = relabel(&h, &mut rng);
            let cr = canonicalize(&renamed);
            assert_eq!(
                c.key, cr.key,
                "seed {seed}: relabeling changed the key\noriginal:\n{h}\nrenamed:\n{renamed}"
            );
            assert_eq!(c.history, cr.history, "seed {seed}: canonical forms differ");
        }
    }
}

/// Checking the canonical history gives the same decided verdict as
/// checking the original, and canonical witnesses translate back into
/// witnesses the independent verifier accepts on the original history.
#[test]
fn canonicalization_preserves_verdicts() {
    let cfg = CheckConfig::default();
    let specs = [
        models::sc(),
        models::tso(),
        models::causal(),
        models::coherent(),
        models::pc_goodman(),
        models::hybrid(),
    ];
    for seed in 200..240u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(seed));
        let c = canonicalize(&h);
        for spec in &specs {
            let orig = check_with_config(&h, spec, &cfg);
            let canon = check_with_config(&c.history, spec, &cfg);
            if let (Some(a), Some(b)) = (orig.decided(), canon.decided()) {
                assert_eq!(
                    a, b,
                    "seed {seed} {}: original {orig:?} vs canonical {canon:?}\n{h}",
                    spec.name
                );
            }
            if let Verdict::Allowed(w) = &canon {
                verify_witness(&c.history, spec, w).unwrap_or_else(|e| {
                    panic!("seed {seed} {}: canonical witness: {e}", spec.name)
                });
                let translated = c.witness_from_canon(w);
                verify_witness(&h, spec, &translated).unwrap_or_else(|e| {
                    panic!(
                        "seed {seed} {}: translated witness rejected: {e}\n{h}",
                        spec.name
                    )
                });
            }
        }
    }
}

/// Round-tripping a witness through canonical coordinates is lossless for
/// real checker output (not just hand-built witnesses).
#[test]
fn witness_round_trip_on_checker_output() {
    let cfg = CheckConfig::default();
    for seed in 300..332u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(seed));
        let c = canonicalize(&h);
        for spec in [models::sc(), models::pc(), models::causal_coherent()] {
            if let Verdict::Allowed(w) = check_with_config(&h, &spec, &cfg) {
                let back = c.witness_from_canon(&c.witness_to_canon(&w));
                assert_eq!(back, *w, "seed {seed} {}: round trip lost data", spec.name);
            }
        }
    }
}

//! The litmus emitter is a true inverse of the parser: every history in
//! the shipped corpus, and a few hundred random histories, survive
//! `parse_history(emit_litmus(h))` unchanged.

use smc_history::litmus::{emit_litmus, emit_litmus_test, parse_history, parse_suite};
use smc_history::{History, HistoryBuilder};
use smc_prng::SmallRng;
use smc_programs::corpus::litmus_suite;

#[test]
fn emitter_round_trips_the_whole_corpus() {
    for t in litmus_suite() {
        let text = emit_litmus(&t.history);
        let back = parse_history(&text)
            .unwrap_or_else(|e| panic!("{}: emitted text does not parse: {e}", t.name));
        assert_eq!(
            back, t.history,
            "{}: round trip changed the history",
            t.name
        );
        // And the emission of the reparse is a fixed point.
        assert_eq!(emit_litmus(&back), text, "{}", t.name);
    }
}

#[test]
fn emitter_round_trips_corpus_suite_blocks() {
    for t in litmus_suite() {
        let text = emit_litmus_test(&t);
        let suite = parse_suite(&text)
            .unwrap_or_else(|e| panic!("{}: emitted suite does not parse: {e}\n{text}", t.name));
        assert_eq!(suite.len(), 1, "{}", t.name);
        assert_eq!(suite[0].name, t.name);
        assert_eq!(suite[0].history, t.history, "{}", t.name);
        assert_eq!(suite[0].expectations, t.expectations, "{}", t.name);
    }
}

const PROCS: [&str; 4] = ["p", "q", "r", "s"];
const LOCS: [&str; 3] = ["x", "y", "z"];

fn random_history(rng: &mut SmallRng) -> History {
    let mut b = HistoryBuilder::new();
    let threads = rng.gen_range(1..5usize);
    for proc in PROCS.iter().take(threads) {
        b.add_proc(proc);
        for _ in 0..rng.gen_range(0..6usize) {
            let loc = LOCS[rng.gen_range(0..LOCS.len())];
            let value = rng.gen_range(0..5i64);
            if rng.gen_bool(0.5) {
                b.write(proc, loc, value.max(1));
            } else {
                b.read(proc, loc, value);
            }
        }
    }
    b.build()
}

#[test]
fn emitter_round_trips_random_histories() {
    for case in 0..200u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(0x117_u64.wrapping_add(case)));
        let text = emit_litmus(&h);
        let back = parse_history(&text).unwrap_or_else(|e| panic!("case {case}: {e}\n{text}"));
        assert_eq!(back, h, "case {case}: round trip changed the history");
    }
}

//! Soundness of conflict-driven learning in the saturation engine.
//!
//! Learned nogood cuts and restarts are pure search-space pruning: they
//! must never change a verdict, only how fast the engine reaches it.
//! These properties force the learning machinery through every
//! configuration corner — learning disabled, learning enabled, and
//! learning under a pathological restart schedule (restart after every
//! conflict, which maximally exercises cut reuse across restarts) — and
//! assert that verdicts are identical and every witness re-verifies.

use smc_bench::bighist::sc_run_aliased;
use smc_core::checker::{check_with_stats, CheckConfig, Engine, EngineKind, Verdict};
use smc_core::models;
use smc_core::verify::verify_witness;
use smc_history::{History, HistoryBuilder};
use smc_prng::SmallRng;
use smc_programs::corpus::litmus_suite;

const PROCS: [&str; 3] = ["p", "q", "r"];
const LOCS: [&str; 2] = ["x", "y"];

/// Random histories biased toward value aliasing (few distinct values)
/// so reads-from is genuinely ambiguous and conflicts actually occur.
fn random_history(rng: &mut SmallRng) -> History {
    let mut b = HistoryBuilder::new();
    for proc in PROCS.iter().take(rng.gen_range(1..4usize)) {
        b.add_proc(proc);
        for _ in 0..rng.gen_range(0..5usize) {
            let is_write = rng.gen_bool(0.5);
            let loc = LOCS[rng.gen_range(0..LOCS.len())];
            let v = rng.gen_range(0..3i64);
            if is_write {
                b.write(proc, loc, v.clamp(1, 2));
            } else {
                b.read(proc, loc, v);
            }
        }
    }
    b.build()
}

/// The three saturation configurations under test: learning off,
/// learning on (the default), and learning with a restart after every
/// conflict.
fn learning_cfgs() -> [(&'static str, CheckConfig); 3] {
    let base = CheckConfig {
        engine: EngineKind::Saturate,
        ..CheckConfig::default()
    };
    [
        (
            "learning off",
            CheckConfig {
                saturate_learning: false,
                ..base.clone()
            },
        ),
        ("learning on", base.clone()),
        (
            "forced restarts",
            CheckConfig {
                saturate_learning: true,
                saturate_restart_unit: 1,
                ..base
            },
        ),
    ]
}

fn verdict_kind(v: &Verdict) -> &'static str {
    match v {
        Verdict::Allowed(_) => "allowed",
        Verdict::Disallowed => "disallowed",
        Verdict::Exhausted => "exhausted",
        Verdict::Unsupported(_) => "unsupported",
    }
}

/// Run all three configurations on (h, spec); assert identical verdicts
/// and verify every witness against the independent verifier.
fn assert_learning_invariant(h: &History, spec: &smc_core::ModelSpec, tag: &str) {
    let mut baseline: Option<(&'static str, &'static str)> = None;
    for (name, cfg) in learning_cfgs() {
        let (v, stats) = check_with_stats(h, spec, &cfg);
        assert_eq!(
            stats.engine_used,
            Engine::Saturate,
            "{tag} {} [{name}]: forced saturate did not run",
            spec.name
        );
        if let Verdict::Unsupported(msg) = &v {
            panic!(
                "{tag} {} [{name}]: saturate refused a supported model: {msg}\n{h}",
                spec.name
            );
        }
        if let Verdict::Allowed(w) = &v {
            verify_witness(h, spec, w)
                .unwrap_or_else(|e| panic!("{tag} {} [{name}]: bad witness: {e}\n{h}", spec.name));
        }
        let kind = verdict_kind(&v);
        match baseline {
            None => baseline = Some((name, kind)),
            Some((base_name, base_kind)) => assert_eq!(
                base_kind, kind,
                "{tag} {}: [{base_name}] says {base_kind} but [{name}] says {kind}\n{h}",
                spec.name
            ),
        }
    }
}

/// Corpus litmus tests: learning and restarts never change a verdict on
/// any saturate-supporting model.
#[test]
fn corpus_verdicts_invariant_under_learning() {
    for t in litmus_suite() {
        for spec in models::saturating_models() {
            assert_learning_invariant(&t.history, &spec, &t.name);
        }
    }
}

/// 200 seeded random aliasing-heavy histories: learning and restarts
/// never change a verdict on any saturate-supporting model.
#[test]
fn random_verdicts_invariant_under_learning() {
    for seed in 7000..7200u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(seed));
        for spec in models::saturating_models() {
            assert_learning_invariant(&h, &spec, &format!("seed {seed}"));
        }
    }
}

/// Mid-size aliased traces are where conflicts, cuts, and restarts
/// actually fire in volume; verdicts must still be invariant and the
/// forced-restart run must report restart activity in its stats.
#[test]
fn aliased_traces_verdicts_invariant_under_learning() {
    for (ops, vals) in [(48usize, 2i64), (64, 3), (96, 3)] {
        let h = sc_run_aliased(51, 4, 4, ops, vals);
        for spec in [models::sc(), models::tso()] {
            assert_learning_invariant(&h, &spec, &format!("aliased {ops}x{vals}"));
        }
    }
    // Sanity: the forced-restart configuration really restarts when the
    // search branches at all.
    let h = sc_run_aliased(51, 4, 4, 96, 3);
    let cfg = CheckConfig {
        engine: EngineKind::Saturate,
        saturate_restart_unit: 1,
        ..CheckConfig::default()
    };
    let (v, stats) = check_with_stats(&h, &models::tso(), &cfg);
    assert!(v.is_allowed(), "aliased trace must still be admitted");
    if stats.saturation_conflicts > 0 {
        assert!(
            stats.saturation_restarts > 0,
            "restart_unit=1 with {} conflicts must restart",
            stats.saturation_conflicts
        );
    }
}

//! Property-based tests over the whole stack: random histories against
//! the checker's invariants, random relations against the relation
//! engine's laws, and random simulator runs against their declarative
//! models.
//!
//! Inputs come from seeded [`smc_prng::SmallRng`] generators (one seed per
//! case, so failures name a reproducible case index) instead of an
//! external property-testing framework.

use smc_core::checker::{check_with_config, CheckConfig, Verdict};
use smc_core::models;
use smc_core::rf::enumerate_reads_from;
use smc_core::verify::verify_witness;
use smc_history::{History, HistoryBuilder};
use smc_prng::SmallRng;
use smc_relation::{BitSet, Relation};
use smc_sim::mem::MemorySystem;
use smc_sim::sched::run_random;
use smc_sim::workload::{Access, OpScript};
use smc_sim::{CausalMem, PcMem, PramMem, ScMem, TsoMem};

const PROCS: [&str; 3] = ["p", "q", "r"];
const LOCS: [&str; 2] = ["x", "y"];

/// One abstract operation: writes store 1..=2 (never the initial value);
/// reads may claim anything in 0..=2.
fn random_op(rng: &mut SmallRng) -> (bool, usize, i64) {
    let is_write = rng.gen_bool(0.5);
    let loc = rng.gen_range(0..LOCS.len());
    let v = rng.gen_range(0..3i64);
    if is_write {
        (true, loc, v.clamp(1, 2))
    } else {
        (false, loc, v)
    }
}

fn random_history(rng: &mut SmallRng) -> History {
    let mut b = HistoryBuilder::new();
    for proc in PROCS.iter().take(rng.gen_range(1..4usize)) {
        b.add_proc(proc);
        for _ in 0..rng.gen_range(0..4usize) {
            let (is_write, loc, value) = random_op(rng);
            if is_write {
                b.write(proc, LOCS[loc], value);
            } else {
                b.read(proc, LOCS[loc], value);
            }
        }
    }
    b.build()
}

fn cfg() -> CheckConfig {
    CheckConfig::default()
}

/// Every `Allowed` verdict carries a witness the independent verifier
/// accepts — for every model.
#[test]
fn witnesses_always_verify() {
    for case in 0..48u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(case));
        for spec in models::all_models() {
            if let Verdict::Allowed(w) = check_with_config(&h, &spec, &cfg()) {
                verify_witness(&h, &spec, &w)
                    .unwrap_or_else(|e| panic!("case {case} {}: {e}\n{h}", spec.name));
            }
        }
    }
}

/// The strength order of Figure 5 holds pointwise on random histories: a
/// stronger model admitting a history forces every weaker model to admit
/// it.
#[test]
fn strength_order_pointwise() {
    for case in 0..48u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(case));
        let pairs = [
            (models::sc(), models::tso()),
            (models::tso(), models::pc()),
            (models::tso(), models::causal()),
            (models::pc(), models::pram()),
            (models::causal(), models::pram()),
            (models::pc(), models::coherent()),
            (models::causal_coherent(), models::causal()),
            (models::causal_coherent(), models::coherent()),
        ];
        for (strong, weak) in pairs {
            let sv = check_with_config(&h, &strong, &cfg());
            if sv.is_allowed() {
                let wv = check_with_config(&h, &weak, &cfg());
                assert!(
                    wv.is_allowed(),
                    "case {case}: {} admits but {} rejects:\n{h}",
                    strong.name,
                    weak.name
                );
            }
        }
    }
}

/// The checker is a function: re-running yields the same verdict.
#[test]
fn checker_deterministic() {
    for case in 0..48u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(case));
        for spec in [models::sc(), models::tso(), models::causal()] {
            let a = check_with_config(&h, &spec, &cfg()).decided();
            let b = check_with_config(&h, &spec, &cfg()).decided();
            assert_eq!(a, b, "case {case}: {} not deterministic", spec.name);
        }
    }
}

/// Reads-from enumeration only produces consistent attributions.
#[test]
fn reads_from_candidates_consistent() {
    for case in 0..48u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(case));
        let (rfs, _) = enumerate_reads_from(&h, 512);
        for rf in &rfs {
            for o in h.ops() {
                if o.is_read() {
                    match rf.source(o.id) {
                        None => assert!(o.value.is_initial(), "case {case}"),
                        Some(w) => {
                            let src = h.op(w);
                            assert!(src.is_write(), "case {case}");
                            assert_eq!(src.loc, o.loc, "case {case}");
                            assert_eq!(src.value, o.value, "case {case}");
                        }
                    }
                }
            }
        }
    }
}

// ---- Relation-engine laws ------------------------------------------------

fn random_relation(rng: &mut SmallRng, n: usize) -> Relation {
    let edges: Vec<(usize, usize)> = (0..rng.gen_range(0..n * 2))
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    Relation::from_edges(n, edges)
}

/// Transitive closure is idempotent and monotone.
#[test]
fn closure_idempotent() {
    for case in 0..128u64 {
        let r = random_relation(&mut SmallRng::seed_from_u64(case), 8);
        let c = r.closed();
        assert!(r.is_subrelation(&c), "case {case}");
        assert_eq!(c.closed(), c, "case {case}");
    }
}

/// A topological sort, when it exists, respects the relation; when it
/// doesn't, the closure has a self-loop.
#[test]
fn topo_sort_correct() {
    for case in 0..128u64 {
        let r = random_relation(&mut SmallRng::seed_from_u64(case), 8);
        match r.topo_sort() {
            Some(order) => {
                assert_eq!(order.len(), r.len(), "case {case}");
                assert!(r.respects(&order), "case {case}");
            }
            None => {
                let c = r.closed();
                assert!((0..r.len()).any(|i| c.has(i, i)), "case {case}");
            }
        }
    }
}

/// Restriction preserves exactly the internal edges.
#[test]
fn restriction_preserves_edges() {
    for case in 0..128u64 {
        let mut rng = SmallRng::seed_from_u64(case);
        let r = random_relation(&mut rng, 8);
        let keep: Vec<bool> = (0..8).map(|_| rng.gen_bool(0.5)).collect();
        let set = BitSet::from_iter(8, (0..8).filter(|&i| keep[i]));
        let (sub, back) = r.restrict(&set);
        for (a, b) in sub.edges() {
            assert!(r.has(back[a], back[b]), "case {case}");
        }
        let internal = r
            .edges()
            .filter(|&(a, b)| set.contains(a) && set.contains(b))
            .count();
        assert_eq!(sub.num_edges(), internal, "case {case}");
    }
}

/// Every linear extension visited respects the relation, and for acyclic
/// relations at least one extension exists.
#[test]
fn linear_extensions_respect() {
    for case in 0..128u64 {
        let r = random_relation(&mut SmallRng::seed_from_u64(case), 6);
        let full = BitSet::full(6);
        let (exts, _) = smc_relation::linext::linear_extensions(&r, &full, 200);
        for e in &exts {
            assert!(r.respects(e), "case {case}");
            assert_eq!(e.len(), 6, "case {case}");
        }
        if r.is_acyclic() {
            assert!(!exts.is_empty(), "case {case}");
        } else {
            assert!(exts.is_empty(), "case {case}");
        }
    }
}

// ---- Random simulator runs vs declarative models --------------------------

fn random_script(rng: &mut SmallRng) -> OpScript {
    let lists = (0..rng.gen_range(2..4usize))
        .map(|_| {
            (0..rng.gen_range(1..4usize))
                .map(|_| {
                    let l = rng.gen_range(0..2u32);
                    if rng.gen_bool(0.5) {
                        Access::write(l, rng.gen_range(1..3i64))
                    } else {
                        Access::read(l)
                    }
                })
                .collect()
        })
        .collect();
    OpScript::new(lists, 2)
}

fn run_and_check<M: MemorySystem>(
    mem: M,
    script: &OpScript,
    spec: &smc_core::ModelSpec,
    seed: u64,
) {
    let r = run_random(mem, script.clone(), seed, 10_000);
    assert!(r.completed, "run did not complete");
    let v = check_with_config(&r.history, spec, &cfg());
    assert!(
        v.is_allowed(),
        "{} machine produced a history its model rejects:\n{}",
        spec.name,
        r.history
    );
}

/// Random runs of every machine stay within their model.
#[test]
fn random_runs_sound() {
    for case in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(case);
        let script = random_script(&mut rng);
        let seed = rng.next_u64();
        let n = 3;
        run_and_check(ScMem::new(n, 2), &script, &models::sc(), seed);
        run_and_check(TsoMem::new(n, 2), &script, &models::tso(), seed);
        run_and_check(PramMem::new(n, 2), &script, &models::pram(), seed);
        run_and_check(CausalMem::new(n, 2), &script, &models::causal(), seed);
        run_and_check(PcMem::new(n, 2), &script, &models::pc(), seed);
    }
}

// ---- Labeled histories (release consistency, WO, hybrid) ------------------

/// Labeled histories with disciplined locations: `x`/`y` ordinary-only,
/// `s`/`t` labeled-only — the properly-labeled shape the RC checker
/// requires.
fn random_labeled_history(rng: &mut SmallRng) -> History {
    let ord = ["x", "y"];
    let syn = ["s", "t"];
    let mut b = HistoryBuilder::new();
    for proc in PROCS.iter().take(rng.gen_range(2..4usize)) {
        b.add_proc(proc);
        for _ in 0..rng.gen_range(0..4usize) {
            let is_write = rng.gen_bool(0.5);
            let is_labeled = rng.gen_bool(0.5);
            let loc = rng.gen_range(0..2usize);
            let value = rng.gen_range(0..3i64);
            let name = if is_labeled { syn[loc] } else { ord[loc] };
            let v = if is_write { value.clamp(1, 2) } else { value };
            match (is_write, is_labeled) {
                (true, true) => b.labeled_write(proc, name, v),
                (true, false) => b.write(proc, name, v),
                (false, true) => b.labeled_read(proc, name, v),
                (false, false) => b.read(proc, name, v),
            };
        }
    }
    b.build()
}

/// WO ⊆ RC_sc ⊆ RC_pc pointwise, and every Allowed witness verifies, on
/// random properly-labeled histories.
#[test]
fn labeled_strength_chain() {
    for case in 0..32u64 {
        let h = random_labeled_history(&mut SmallRng::seed_from_u64(case));
        let chain = [models::weak_ordering(), models::rc_sc(), models::rc_pc()];
        let mut prev: Option<bool> = None;
        let mut undecided = false;
        for spec in &chain {
            let v = check_with_config(&h, spec, &cfg());
            if let Verdict::Allowed(w) = &v {
                verify_witness(&h, spec, w)
                    .unwrap_or_else(|e| panic!("case {case} {}: {e}\n{h}", spec.name));
            }
            let decided = v.decided();
            if decided.is_none() {
                // Budget ran out: skip the rest of this chain (the
                // property is about decided verdicts).
                undecided = true;
                break;
            }
            if prev == Some(true) {
                assert_eq!(
                    decided,
                    Some(true),
                    "case {case}: strength chain broken at {} on\n{}",
                    spec.name,
                    h
                );
            }
            prev = decided;
        }
        let _ = undecided;
    }
}

/// SC admitting a labeled history forces WO, RC_sc, RC_pc and hybrid to
/// admit it (SC is the strongest point of the labeled lattice).
#[test]
fn sc_bottom_of_labeled_lattice() {
    for case in 0..32u64 {
        let h = random_labeled_history(&mut SmallRng::seed_from_u64(case));
        if check_with_config(&h, &models::sc(), &cfg()).is_allowed() {
            for spec in [
                models::weak_ordering(),
                models::rc_sc(),
                models::rc_pc(),
                models::hybrid(),
            ] {
                let v = check_with_config(&h, &spec, &cfg());
                assert!(
                    v.is_allowed(),
                    "case {case}: SC admits but {} gives {v:?} on\n{}",
                    spec.name,
                    h
                );
            }
        }
    }
}

// ---- Random labeled-script runs vs the labeled models ----------------------

/// Scripts with disciplined locations: 0..2 ordinary, 2..4 labeled-only.
fn random_labeled_script(rng: &mut SmallRng) -> OpScript {
    let lists = (0..2)
        .map(|_| {
            (0..rng.gen_range(1..4usize))
                .map(|_| {
                    let l = rng.gen_range(0..2u32);
                    let v = rng.gen_range(1..3i64);
                    match (rng.gen_bool(0.5), rng.gen_bool(0.5)) {
                        (true, false) => Access::write(l, v),
                        (false, false) => Access::read(l),
                        (true, true) => Access::release(l + 2, v),
                        (false, true) => Access::acquire(l + 2),
                    }
                })
                .collect()
        })
        .collect();
    OpScript::new(lists, 4)
}

/// The RC/WO/Hybrid machines stay within their models on random labeled
/// scripts and schedules.
#[test]
fn labeled_random_runs_sound() {
    use smc_sim::{HybridMem, RcMem, SyncMode, WoMem};
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(case);
        let script = random_labeled_script(&mut rng);
        let seed = rng.next_u64();
        run_and_check(
            RcMem::new(SyncMode::Sc, 2, 4),
            &script,
            &models::rc_sc(),
            seed,
        );
        run_and_check(
            RcMem::new(SyncMode::Pc, 2, 4),
            &script,
            &models::rc_pc(),
            seed,
        );
        run_and_check(WoMem::new(2, 4), &script, &models::weak_ordering(), seed);
        run_and_check(HybridMem::new(2, 4), &script, &models::hybrid(), seed);
    }
}

/// `SearchOptions` are pure tuning knobs: disabling failed-state
/// memoization (which must then be truly bypassed, not allocated and
/// ignored) or dead-state pruning changes the search's cost, never its
/// outcome. Found orders must also be legal under every combination.
#[test]
fn search_options_do_not_change_outcomes() {
    use smc_core::budget::Budget;
    use smc_core::orders::program_order;
    use smc_core::view::{
        find_legal_extension_with, is_legal_sequence, LegalityMode, SearchOptions, SearchOutcome,
        ViewProblem,
    };
    for seed in 400..500u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(seed));
        let po = program_order(&h);
        let p = ViewProblem {
            history: &h,
            ops: BitSet::full(h.num_ops()),
            constraints: &po,
            legality: LegalityMode::ByValue,
        };
        let mut found: Option<bool> = None;
        for memoize in [true, false] {
            for dead_prune in [true, false] {
                let budget = Budget::local(1_000_000);
                let out = find_legal_extension_with(
                    &p,
                    &budget,
                    SearchOptions {
                        memoize,
                        dead_prune,
                    },
                );
                let this = match &out {
                    SearchOutcome::Found(order) => {
                        assert!(
                            is_legal_sequence(&h, order),
                            "seed {seed} memoize={memoize} dead_prune={dead_prune}: illegal order\n{h}"
                        );
                        true
                    }
                    SearchOutcome::NotFound => false,
                    SearchOutcome::Exhausted => {
                        panic!("seed {seed}: tiny history exhausted a 1M-node budget")
                    }
                };
                match found {
                    None => found = Some(this),
                    Some(prev) => assert_eq!(
                        prev, this,
                        "seed {seed} memoize={memoize} dead_prune={dead_prune}: outcome changed\n{h}"
                    ),
                }
            }
        }
    }
}

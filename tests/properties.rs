//! Property-based tests over the whole stack: random histories against
//! the checker's invariants, random relations against the relation
//! engine's laws, and random simulator runs against their declarative
//! models.

use proptest::prelude::*;
use smc_core::checker::{check_with_config, CheckConfig, Verdict};
use smc_core::models;
use smc_core::rf::enumerate_reads_from;
use smc_core::verify::verify_witness;
use smc_history::{History, HistoryBuilder};
use smc_relation::{BitSet, Relation};
use smc_sim::mem::MemorySystem;
use smc_sim::sched::run_random;
use smc_sim::workload::{Access, OpScript};
use smc_sim::{CausalMem, PcMem, PramMem, ScMem, TsoMem};

const PROCS: [&str; 3] = ["p", "q", "r"];
const LOCS: [&str; 2] = ["x", "y"];

/// One abstract operation: (is_write, loc index, value).
fn op_strategy() -> impl Strategy<Value = (bool, usize, i64)> {
    (any::<bool>(), 0..LOCS.len(), 0..3i64).prop_map(|(w, l, v)| {
        // Writes store 1..=2 (never the initial value); reads may claim
        // anything in 0..=2.
        if w {
            (true, l, v.clamp(1, 2))
        } else {
            (false, l, v)
        }
    })
}

fn history_strategy() -> impl Strategy<Value = History> {
    proptest::collection::vec(
        proptest::collection::vec(op_strategy(), 0..4),
        1..=3,
    )
    .prop_map(|threads| {
        let mut b = HistoryBuilder::new();
        for (t, ops) in threads.iter().enumerate() {
            b.add_proc(PROCS[t]);
            for &(is_write, loc, value) in ops {
                if is_write {
                    b.write(PROCS[t], LOCS[loc], value);
                } else {
                    b.read(PROCS[t], LOCS[loc], value);
                }
            }
        }
        b.build()
    })
}

fn cfg() -> CheckConfig {
    CheckConfig::default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every `Allowed` verdict carries a witness the independent
    /// verifier accepts — for every model.
    #[test]
    fn witnesses_always_verify(h in history_strategy()) {
        for spec in models::all_models() {
            if let Verdict::Allowed(w) = check_with_config(&h, &spec, &cfg()) {
                verify_witness(&h, &spec, &w).map_err(|e| {
                    TestCaseError::fail(format!("{}: {e}\n{h}", spec.name))
                })?;
            }
        }
    }

    /// The strength order of Figure 5 holds pointwise on random
    /// histories: a stronger model admitting a history forces every
    /// weaker model to admit it.
    #[test]
    fn strength_order_pointwise(h in history_strategy()) {
        let pairs = [
            (models::sc(), models::tso()),
            (models::tso(), models::pc()),
            (models::tso(), models::causal()),
            (models::pc(), models::pram()),
            (models::causal(), models::pram()),
            (models::pc(), models::coherent()),
            (models::causal_coherent(), models::causal()),
            (models::causal_coherent(), models::coherent()),
        ];
        for (strong, weak) in pairs {
            let sv = check_with_config(&h, &strong, &cfg());
            if sv.is_allowed() {
                let wv = check_with_config(&h, &weak, &cfg());
                prop_assert!(
                    wv.is_allowed(),
                    "{} admits but {} rejects:\n{h}",
                    strong.name, weak.name
                );
            }
        }
    }

    /// The checker is a function: re-running yields the same verdict.
    #[test]
    fn checker_deterministic(h in history_strategy()) {
        for spec in [models::sc(), models::tso(), models::causal()] {
            let a = check_with_config(&h, &spec, &cfg()).decided();
            let b = check_with_config(&h, &spec, &cfg()).decided();
            prop_assert_eq!(a, b);
        }
    }

    /// Reads-from enumeration only produces consistent attributions.
    #[test]
    fn reads_from_candidates_consistent(h in history_strategy()) {
        let (rfs, _) = enumerate_reads_from(&h, 512);
        for rf in &rfs {
            for o in h.ops() {
                if o.is_read() {
                    match rf.source(o.id) {
                        None => prop_assert!(o.value.is_initial()),
                        Some(w) => {
                            let src = h.op(w);
                            prop_assert!(src.is_write());
                            prop_assert_eq!(src.loc, o.loc);
                            prop_assert_eq!(src.value, o.value);
                        }
                    }
                }
            }
        }
    }
}

// ---- Relation-engine laws ------------------------------------------------

fn relation_strategy(n: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec((0..n, 0..n), 0..(n * 2)).prop_map(move |edges| {
        Relation::from_edges(n, edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transitive closure is idempotent and monotone.
    #[test]
    fn closure_idempotent(r in relation_strategy(8)) {
        let c = r.closed();
        prop_assert!(r.is_subrelation(&c));
        prop_assert_eq!(c.closed(), c);
    }

    /// A topological sort, when it exists, respects the relation; when
    /// it doesn't, the closure has a self-loop.
    #[test]
    fn topo_sort_correct(r in relation_strategy(8)) {
        match r.topo_sort() {
            Some(order) => {
                prop_assert_eq!(order.len(), r.len());
                prop_assert!(r.respects(&order));
            }
            None => {
                let c = r.closed();
                prop_assert!((0..r.len()).any(|i| c.has(i, i)));
            }
        }
    }

    /// Restriction preserves exactly the internal edges.
    #[test]
    fn restriction_preserves_edges(r in relation_strategy(8), keep in proptest::collection::vec(any::<bool>(), 8)) {
        let set = BitSet::from_iter(8, (0..8).filter(|&i| keep[i]));
        let (sub, back) = r.restrict(&set);
        for (a, b) in sub.edges() {
            prop_assert!(r.has(back[a], back[b]));
        }
        let internal = r
            .edges()
            .filter(|&(a, b)| set.contains(a) && set.contains(b))
            .count();
        prop_assert_eq!(sub.num_edges(), internal);
    }

    /// Every linear extension visited respects the relation, and for
    /// acyclic relations at least one extension exists.
    #[test]
    fn linear_extensions_respect(r in relation_strategy(6)) {
        let full = BitSet::full(6);
        let (exts, _) = smc_relation::linext::linear_extensions(&r, &full, 200);
        for e in &exts {
            prop_assert!(r.respects(e));
            prop_assert_eq!(e.len(), 6);
        }
        if r.is_acyclic() {
            prop_assert!(!exts.is_empty());
        } else {
            prop_assert!(exts.is_empty());
        }
    }
}

// ---- Random simulator runs vs declarative models --------------------------

fn script_strategy() -> impl Strategy<Value = OpScript> {
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), 0..2u32, 1..3i64), 1..4),
        2..=3,
    )
    .prop_map(|threads| {
        let lists = threads
            .into_iter()
            .map(|ops| {
                ops.into_iter()
                    .map(|(w, l, v)| if w { Access::write(l, v) } else { Access::read(l) })
                    .collect()
            })
            .collect();
        OpScript::new(lists, 2)
    })
}

fn run_and_check<M: MemorySystem>(
    mem: M,
    script: &OpScript,
    spec: &smc_core::ModelSpec,
    seed: u64,
) -> Result<(), TestCaseError> {
    let r = run_random(mem, script.clone(), seed, 10_000);
    prop_assert!(r.completed, "run did not complete");
    let v = check_with_config(&r.history, spec, &cfg());
    prop_assert!(
        v.is_allowed(),
        "{} machine produced a history its model rejects:\n{}",
        spec.name,
        r.history
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random runs of every machine stay within their model.
    #[test]
    fn random_runs_sound(script in script_strategy(), seed in any::<u64>()) {
        let n = 3;
        run_and_check(ScMem::new(n, 2), &script, &models::sc(), seed)?;
        run_and_check(TsoMem::new(n, 2), &script, &models::tso(), seed)?;
        run_and_check(PramMem::new(n, 2), &script, &models::pram(), seed)?;
        run_and_check(CausalMem::new(n, 2), &script, &models::causal(), seed)?;
        run_and_check(PcMem::new(n, 2), &script, &models::pc(), seed)?;
    }
}

// ---- Labeled histories (release consistency, WO, hybrid) ------------------

/// Labeled histories with disciplined locations: `x`/`y` ordinary-only,
/// `s`/`t` labeled-only — the properly-labeled shape the RC checker
/// requires.
fn labeled_history_strategy() -> impl Strategy<Value = History> {
    // Op encoding: (is_write, is_labeled, loc of its class, value).
    proptest::collection::vec(
        proptest::collection::vec(
            (any::<bool>(), any::<bool>(), 0..2usize, 0..3i64),
            0..4,
        ),
        2..=3,
    )
    .prop_map(|threads| {
        let ord = ["x", "y"];
        let syn = ["s", "t"];
        let mut b = HistoryBuilder::new();
        for (t, ops) in threads.iter().enumerate() {
            b.add_proc(PROCS[t]);
            for &(is_write, is_labeled, loc, value) in ops {
                let name = if is_labeled { syn[loc] } else { ord[loc] };
                let v = if is_write { value.clamp(1, 2) } else { value };
                match (is_write, is_labeled) {
                    (true, true) => b.labeled_write(PROCS[t], name, v),
                    (true, false) => b.write(PROCS[t], name, v),
                    (false, true) => b.labeled_read(PROCS[t], name, v),
                    (false, false) => b.read(PROCS[t], name, v),
                }
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// WO ⊆ RC_sc ⊆ RC_pc pointwise, and every Allowed witness verifies,
    /// on random properly-labeled histories.
    #[test]
    fn labeled_strength_chain(h in labeled_history_strategy()) {
        let chain = [
            models::weak_ordering(),
            models::rc_sc(),
            models::rc_pc(),
        ];
        let mut prev: Option<bool> = None;
        for spec in &chain {
            let v = check_with_config(&h, spec, &cfg());
            if let Verdict::Allowed(w) = &v {
                verify_witness(&h, spec, w).map_err(|e| {
                    TestCaseError::fail(format!("{}: {e}\n{h}", spec.name))
                })?;
            }
            let decided = v.decided();
            prop_assume!(decided.is_some());
            if prev == Some(true) {
                prop_assert_eq!(
                    decided, Some(true),
                    "strength chain broken at {} on\n{}", spec.name, h
                );
            }
            prev = decided;
        }
    }

    /// SC admitting a labeled history forces WO, RC_sc, RC_pc and hybrid
    /// to admit it (SC is the strongest point of the labeled lattice).
    #[test]
    fn sc_bottom_of_labeled_lattice(h in labeled_history_strategy()) {
        if check_with_config(&h, &models::sc(), &cfg()).is_allowed() {
            for spec in [
                models::weak_ordering(),
                models::rc_sc(),
                models::rc_pc(),
                models::hybrid(),
            ] {
                let v = check_with_config(&h, &spec, &cfg());
                prop_assert!(
                    v.is_allowed(),
                    "SC admits but {} gives {v:?} on\n{}", spec.name, h
                );
            }
        }
    }
}

// ---- Random labeled-script runs vs the labeled models ----------------------

/// Scripts with disciplined locations: 0..2 ordinary, 2..4 labeled-only.
fn labeled_script_strategy() -> impl Strategy<Value = OpScript> {
    proptest::collection::vec(
        proptest::collection::vec((any::<bool>(), any::<bool>(), 0..2u32, 1..3i64), 1..4),
        2..=2,
    )
    .prop_map(|threads| {
        let lists = threads
            .into_iter()
            .map(|ops| {
                ops.into_iter()
                    .map(|(w, labeled, l, v)| match (w, labeled) {
                        (true, false) => Access::write(l, v),
                        (false, false) => Access::read(l),
                        (true, true) => Access::release(l + 2, v),
                        (false, true) => Access::acquire(l + 2),
                    })
                    .collect()
            })
            .collect();
        OpScript::new(lists, 4)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The RC/WO/Hybrid machines stay within their models on random
    /// labeled scripts and schedules.
    #[test]
    fn labeled_random_runs_sound(script in labeled_script_strategy(), seed in any::<u64>()) {
        use smc_sim::{HybridMem, RcMem, SyncMode, WoMem};
        run_and_check(
            RcMem::new(SyncMode::Sc, 2, 4),
            &script,
            &models::rc_sc(),
            seed,
        )?;
        run_and_check(
            RcMem::new(SyncMode::Pc, 2, 4),
            &script,
            &models::rc_pc(),
            seed,
        )?;
        run_and_check(WoMem::new(2, 4), &script, &models::weak_ordering(), seed)?;
        run_and_check(HybridMem::new(2, 4), &script, &models::hybrid(), seed)?;
    }
}

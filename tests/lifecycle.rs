//! Session lifecycle: checkpoint/restore, processor churn, windowing.
//!
//! The tentpole invariant is *transparency*: none of the lifecycle
//! machinery may change what the monitor says. Checkpointing at any
//! point and resuming must be byte-identical to never having stopped
//! (the final checkpoints of the warm and cold runs are compared as raw
//! bytes, which covers verdicts, first-violation positions, totals and
//! every engine's frontier arena at once). Folding a retired processor
//! into the summarized prefix must leave the verdict stream unchanged.
//! And corrupt or truncated checkpoint files must come back as `Err`
//! with a byte offset — never a panic.

use smc_core::checker::{CheckConfig, EngineKind};
use smc_core::models;
use smc_history::trace::Trace;
use smc_history::{History, HistoryBuilder, Label, OpKind};
use smc_monitor::{Monitor, MonitorConfig, TriVerdict};
use smc_prng::SmallRng;
use smc_programs::corpus::litmus_suite;

const PROCS: [&str; 4] = ["p", "q", "r", "s"];
const LOCS: [&str; 3] = ["x", "y", "z"];

fn random_history(rng: &mut SmallRng) -> History {
    let mut b = HistoryBuilder::new();
    let threads = rng.gen_range(1..5usize);
    for proc in PROCS.iter().take(threads) {
        b.add_proc(proc);
        for _ in 0..rng.gen_range(0..6usize) {
            let loc = LOCS[rng.gen_range(0..LOCS.len())];
            let value = rng.gen_range(0..5i64);
            if rng.gen_bool(0.5) {
                b.write(proc, loc, value.max(1));
            } else {
                b.read(proc, loc, value);
            }
        }
    }
    b.build()
}

/// A monitor configuration for case `ci`, cycling through the check
/// engines and (every fourth case) a small window. Each call attaches a
/// fresh memo cache so the compared runs never warm each other.
fn case_config(ci: usize) -> MonitorConfig {
    let engine = [
        EngineKind::Auto,
        EngineKind::Exhaustive,
        EngineKind::Saturate,
    ][ci % 3];
    MonitorConfig {
        check: CheckConfig {
            engine,
            ..CheckConfig::default().with_memo()
        },
        window: if ci % 4 == 3 { Some(3) } else { None },
        ..MonitorConfig::default()
    }
}

/// Feed `t.events()[from..to]` one event at a time through the
/// intern-on-first-use path, the discipline a live stream uses.
fn feed_events(mon: &mut Monitor, t: &Trace, from: usize, to: usize) {
    for ev in &t.events()[from..to] {
        mon.feed(
            t.proc_name(ev.proc),
            ev.kind,
            t.loc_name(ev.loc),
            ev.value.0,
            ev.label,
        );
    }
}

#[test]
fn checkpoint_round_trip_resumes_byte_identically() {
    let model_list = models::lattice_models();
    let mut cases: Vec<(String, History)> = litmus_suite()
        .into_iter()
        .map(|t| (t.name, t.history))
        .collect();
    for case in 0..200u64 {
        let h = random_history(&mut SmallRng::seed_from_u64(0xc4a7_u64.wrapping_add(case)));
        cases.push((format!("random {case}"), h));
    }
    for (ci, (name, h)) in cases.iter().enumerate() {
        let trace = Trace::from_history(h);
        // Cold: the whole stream through one uninterrupted monitor.
        let mut cold = Monitor::new(model_list.clone(), case_config(ci));
        feed_events(&mut cold, &trace, 0, trace.len());
        // Warm: half the stream, checkpoint, restore, the other half.
        let split = trace.len() / 2;
        let mut warm = Monitor::new(model_list.clone(), case_config(ci));
        feed_events(&mut warm, &trace, 0, split);
        let blob = warm.checkpoint_bytes();
        let cfg = case_config(ci);
        let mut warm = Monitor::restore_bytes(&blob, model_list.clone(), cfg)
            .unwrap_or_else(|e| panic!("{name}: restore failed: {e}"));
        // Restoring and immediately re-checkpointing reproduces the
        // blob bit for bit.
        assert_eq!(warm.checkpoint_bytes(), blob, "{name}: unstable round trip");
        feed_events(&mut warm, &trace, split, trace.len());
        assert_eq!(
            warm.verdicts(),
            cold.verdicts(),
            "{name}: warm and cold verdicts diverge\n{h}"
        );
        for (i, model) in model_list.iter().enumerate() {
            assert_eq!(
                warm.first_violation(i),
                cold.first_violation(i),
                "{name}: first-violation positions diverge on {}",
                model.name
            );
        }
        assert_eq!(
            warm.checkpoint_bytes(),
            cold.checkpoint_bytes(),
            "{name}: final checkpoints are not byte-identical\n{h}"
        );
    }
}

/// One step of a lifecycle script: a processor transition or an event.
#[derive(Clone, Debug)]
enum Step {
    Join(String),
    Retire(String),
    Ev(String, OpKind, &'static str, i64),
}

fn apply(mon: &mut Monitor, step: &Step) {
    match step {
        Step::Join(p) => mon.join(p),
        Step::Retire(p) => mon.retire(p),
        Step::Ev(p, kind, loc, v) => {
            mon.feed(p, *kind, loc, *v, Label::Ordinary);
        }
    }
}

/// A random stream of joins, events and retires. Reads mostly return
/// the globally last-written value (keeping engines admitted, so folds
/// actually trigger), with an occasional stale read for violation
/// coverage. Retired processors never issue further events.
fn random_lifecycle_script(rng: &mut SmallRng) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut active: Vec<String> = Vec::new();
    let mut next_proc = 0usize;
    let mut last: std::collections::HashMap<&'static str, i64> = Default::default();
    let join = |steps: &mut Vec<Step>, active: &mut Vec<String>, next_proc: &mut usize| {
        let name = format!("p{next_proc}");
        *next_proc += 1;
        steps.push(Step::Join(name.clone()));
        active.push(name);
    };
    for _ in 0..rng.gen_range(1..4usize) {
        join(&mut steps, &mut active, &mut next_proc);
    }
    for _ in 0..rng.gen_range(8..28usize) {
        match rng.gen_range(0..12u32) {
            0 if active.len() > 1 => {
                let i = rng.gen_range(0..active.len());
                steps.push(Step::Retire(active.swap_remove(i)));
            }
            1 if active.len() < 4 => join(&mut steps, &mut active, &mut next_proc),
            _ => {
                let p = active[rng.gen_range(0..active.len())].clone();
                let loc = LOCS[rng.gen_range(0..LOCS.len())];
                if rng.gen_bool(0.5) {
                    let v = rng.gen_range(0..4i64) + 1;
                    last.insert(loc, v);
                    steps.push(Step::Ev(p, OpKind::Write, loc, v));
                } else {
                    let v = if rng.gen_bool(0.85) {
                        *last.get(loc).unwrap_or(&0)
                    } else {
                        rng.gen_range(0..5i64)
                    };
                    steps.push(Step::Ev(p, OpKind::Read, loc, v));
                }
            }
        }
    }
    steps
}

#[test]
fn checkpoint_round_trips_across_churn_and_windows() {
    let model_list = models::lattice_models();
    for case in 0..60usize {
        let script =
            random_lifecycle_script(&mut SmallRng::seed_from_u64(0x10ad_u64 + case as u64));
        let mut cold = Monitor::new(model_list.clone(), case_config(case));
        for s in &script {
            apply(&mut cold, s);
        }
        let split = script.len() / 2;
        let mut warm = Monitor::new(model_list.clone(), case_config(case));
        for s in &script[..split] {
            apply(&mut warm, s);
        }
        let blob = warm.checkpoint_bytes();
        let mut warm = Monitor::restore_bytes(&blob, model_list.clone(), case_config(case))
            .unwrap_or_else(|e| panic!("case {case}: restore failed: {e}"));
        for s in &script[split..] {
            apply(&mut warm, s);
        }
        assert_eq!(
            warm.verdicts(),
            cold.verdicts(),
            "case {case}: warm and cold verdicts diverge\nscript: {script:?}"
        );
        assert_eq!(
            warm.checkpoint_bytes(),
            cold.checkpoint_bytes(),
            "case {case}: final checkpoints are not byte-identical\nscript: {script:?}"
        );
        let t = cold.totals();
        assert_eq!(warm.totals(), t, "case {case}: totals diverge");
        assert!(t.joins >= 1, "case {case}: script produced no joins");
    }
}

#[test]
fn truncated_and_corrupt_checkpoints_are_rejected_not_panicking() {
    let model_list = models::lattice_models();
    let cfg = MonitorConfig {
        window: Some(2),
        ..MonitorConfig::default()
    };
    // A checkpoint exercising every section: churn, folds, windows.
    let mut mon = Monitor::new(model_list.clone(), cfg.clone());
    let script = random_lifecycle_script(&mut SmallRng::seed_from_u64(0xdead));
    for s in &script {
        apply(&mut mon, s);
    }
    let blob = mon.checkpoint_bytes();
    let restore = |bytes: &[u8]| Monitor::restore_bytes(bytes, model_list.clone(), cfg.clone());
    // Every truncation is an error naming an offset, never a panic.
    for cut in 0..blob.len() {
        match restore(&blob[..cut]) {
            Ok(_) => panic!(
                "truncated checkpoint ({cut} of {} bytes) accepted",
                blob.len()
            ),
            Err(e) => assert!(e.contains("byte"), "cut {cut}: error lacks an offset: {e}"),
        }
    }
    // Trailing garbage is rejected too — a checkpoint is the whole file.
    let mut long = blob.clone();
    long.push(0);
    assert!(restore(&long).is_err(), "trailing byte accepted");
    // A bad magic number is called out as not-a-checkpoint.
    let mut bad = blob.clone();
    bad[0] ^= 0xff;
    match restore(&bad) {
        Ok(_) => panic!("bad magic accepted"),
        Err(e) => assert!(e.contains("magic"), "magic error missing: {e}"),
    }
    // Arbitrary single-byte corruption must never panic; it may load
    // (counters are not checksummed) but usually errors with an offset.
    for i in (0..blob.len()).step_by(7) {
        let mut bad = blob.clone();
        bad[i] ^= 0x5a;
        let _ = restore(&bad);
    }
}

#[test]
fn churn_folding_is_transparent_to_verdicts() {
    let model_list = models::lattice_models();
    let mut total_folds = 0u64;
    let mut total_reuse = 0usize;
    for case in 0..40usize {
        let script =
            random_lifecycle_script(&mut SmallRng::seed_from_u64(0xf01d_u64 + case as u64));
        let cfg = MonitorConfig {
            window: Some(2),
            ..MonitorConfig::default()
        };
        // Churned: the script as written, retires folding processors
        // away. Plain: the same event stream with every processor kept
        // active forever.
        let mut churned = Monitor::new(model_list.clone(), cfg.clone());
        let mut plain = Monitor::new(model_list.clone(), cfg.clone());
        for s in &script {
            apply(&mut churned, s);
            if let Step::Ev(..) = s {
                apply(&mut plain, s);
            }
            if let Step::Join(p) = s {
                plain.declare_proc(p);
            }
        }
        assert_eq!(
            churned.verdicts(),
            plain.verdicts(),
            "case {case}: folding changed the verdicts\nscript: {script:?}"
        );
        let t = churned.totals();
        total_folds += t.folds;
        let joins = script.iter().filter(|s| matches!(s, Step::Join(_))).count();
        assert!(
            churned.churn().width() <= joins,
            "case {case}: width {} exceeds total processors {joins}",
            churned.churn().width()
        );
        // A fold before a later join lets that join reuse the freed
        // slot, keeping the frontier narrower than the processor total.
        if churned.churn().width() < joins {
            total_reuse += 1;
        }
    }
    assert!(
        total_folds > 0,
        "no script ever folded a retired processor — the fold path is untested"
    );
    assert!(
        total_reuse > 0,
        "no script ever reused a retired slot — O(active) width is untested"
    );
}

#[test]
fn windowed_monitoring_bounds_frontier_memory() {
    let model_list = models::lattice_models();
    // A long sequentially-consistent stream: disjoint single-writer
    // locations, every read returns the location's last write. All
    // models stay admitted, so the unwindowed frontier keeps every
    // interleaving of the whole prefix while the windowed one restarts
    // from the sealed memory contents.
    let mk_events = || {
        let mut evs = Vec::new();
        for round in 0..25i64 {
            for (p, &loc) in LOCS.iter().enumerate() {
                evs.push((format!("p{p}"), OpKind::Write, loc, round + 1));
                evs.push((format!("p{p}"), OpKind::Read, loc, round + 1));
            }
        }
        evs
    };
    let run = |window: Option<usize>| {
        let mut mon = Monitor::new(
            model_list.clone(),
            MonitorConfig {
                window,
                ..MonitorConfig::default()
            },
        );
        let mut peak = 0u64;
        for (p, kind, loc, v) in mk_events() {
            let rep = mon.feed(&p, kind, loc, v, Label::Ordinary);
            peak = peak.max(rep.frontier_states);
        }
        assert!(
            mon.verdicts().iter().all(|v| *v == TriVerdict::Admitted),
            "SC stream not admitted under window {window:?}: {:?}",
            mon.verdicts()
        );
        (peak, mon.totals().windows_sealed)
    };
    let (peak_plain, _) = run(None);
    let (peak_windowed, sealed) = run(Some(6));
    assert!(sealed >= 20, "expected steady sealing, got {sealed}");
    assert!(
        peak_windowed * 4 < peak_plain,
        "windowing did not bound memory: windowed peak {peak_windowed}, plain peak {peak_plain}"
    );
}

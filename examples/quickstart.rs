//! Quickstart: parse a litmus-style execution history and ask each
//! memory model of the paper whether it admits it.
//!
//! ```sh
//! cargo run -p smc-bench --example quickstart
//! ```

use smc_core::checker::{check, format_view, Verdict};
use smc_core::models;
use smc_history::litmus::parse_history;
use smc_history::ProcId;

fn main() {
    // The paper's Figure 1: each processor writes its own flag, then
    // reads the other's — and both reads return the initial value.
    let history = parse_history(
        "p: w(x)1 r(y)0\n\
         q: w(y)1 r(x)0",
    )
    .expect("valid litmus text");

    println!("History under test:\n{history}");
    println!("{:<16} verdict", "model");
    println!("{:-<30}", "");
    for model in models::all_models() {
        match check(&history, &model) {
            Verdict::Allowed(witness) => {
                println!("{:<16} allowed", model.name);
                // The witness is the paper's per-processor views: a legal
                // sequential history per processor explaining every read.
                for (p, view) in witness.views.iter().enumerate() {
                    println!("    {}", format_view(&history, ProcId(p as u32), view));
                }
            }
            Verdict::Disallowed => println!("{:<16} forbidden", model.name),
            Verdict::Exhausted => println!("{:<16} undecided", model.name),
            Verdict::Unsupported(why) => println!("{:<16} unsupported: {why}", model.name),
        }
    }
    println!(
        "\nSC forbids the history (no single interleaving explains it), while \
         every\nweaker model admits it — the defining example of relaxed memory."
    );
}

//! Define *new* memory models from the paper's three parameters — the
//! Section 7 exercise — and place them in the lattice empirically.
//!
//! ```sh
//! cargo run -p smc-bench --example custom_memory
//! ```
//!
//! Two new points in the parameter space:
//!
//! * **CausalCoherent** — causal memory plus the coherence
//!   mutual-consistency condition (named explicitly in Section 7);
//! * **PRAMppo** — PRAM with its ordering weakened from `→po` to `→ppo`
//!   (reads may bypass earlier writes). The sweep shows this is *not* a
//!   new memory at all: it admits exactly the same histories as PRAM,
//!   because any ordering cycle enters a processor's operations at a
//!   read (via writes-before), and read→read program-order pairs survive
//!   in `→ppo` — the dropped write→read edges are never load-bearing
//!   without a store-order or coherence requirement. The framework makes
//!   such equivalences checkable instead of folklore.

use smc_core::checker::CheckConfig;
use smc_core::histgen::{all_histories, GenParams};
use smc_core::lattice::compare;
use smc_core::models;
use smc_core::spec::{GlobalOrder, ModelSpec, OperationSet, OwnerOrder};
use smc_history::History;
use smc_programs::corpus::litmus_suite;

fn main() {
    let causal_coherent = models::causal_coherent();

    let pram_ppo = ModelSpec {
        name: "PRAMppo".into(),
        delta: OperationSet::WritesOnly,
        identical_views: false,
        global_write_order: false,
        coherence: false,
        labeled: None,
        global_order: GlobalOrder::PartialProgramOrder,
        owner_order: OwnerOrder::None,
        rc_bracketing: false,
        fence_bracketing: false,
    };
    pram_ppo.validate().expect("well-formed parameters");

    let mut list = models::figure5_models();
    list.push(causal_coherent);
    list.push(pram_ppo);

    // Corpus: the litmus suite (distinct written values — the separating
    // power) plus the exhaustive 2×2 universe.
    let mut corpus: Vec<History> = litmus_suite()
        .into_iter()
        .map(|t| t.history)
        .filter(|h| !h.has_labeled_ops())
        .collect();
    corpus.extend(all_histories(&GenParams {
        procs: 2,
        ops_per_proc: 2,
        locs: 2,
        values: 1,
    }));
    println!(
        "Classifying {} histories against {} models...\n",
        corpus.len(),
        list.len()
    );
    let result = compare(&corpus, &list, &CheckConfig::default());

    println!("{:<16} admitted histories", "model");
    for (name, count) in result.model_names.iter().zip(&result.counts) {
        println!("{name:<16} {count}");
    }

    let idx = |name: &str| result.model_names.iter().position(|n| n == name).unwrap();
    let (sc, causal, cc, pram, pramppo, tso) = (
        idx("SC"),
        idx("Causal"),
        idx("CausalCoherent"),
        idx("PRAM"),
        idx("PRAMppo"),
        idx("TSO"),
    );

    println!("\nWhere the new memories land:");
    println!(
        "  SC ⊂ CausalCoherent ⊂ Causal: {} / {}",
        result.strictly_stronger(sc, cc),
        result.strictly_stronger(cc, causal)
    );
    println!(
        "  TSO ⊂ PRAMppo: {}",
        result.strictly_stronger(tso, pramppo)
    );
    println!(
        "  PRAMppo ≡ PRAM on this corpus: {}",
        result.equivalent_on_corpus(pram, pramppo)
    );
    assert!(result.strictly_stronger(sc, cc));
    assert!(result.strictly_stronger(cc, causal));
    assert!(result.strictly_stronger(tso, pramppo));
    assert!(result.equivalent_on_corpus(pram, pramppo));
    println!(
        "\nNew memories are parameter choices, not new formalisms — and the \
         framework\nexposes when a 'new' choice (PRAM + ppo) collapses into an \
         existing memory."
    );
}

//! A guided tour of the paper, section by section, with every claim
//! re-established by the checker or a machine as it is narrated.
//!
//! ```sh
//! cargo run -p smc-bench --example paper_tour
//! ```

use smc_core::checker::{check, format_view, Verdict};
use smc_core::models;
use smc_core::spec::ModelSpec;
use smc_history::litmus::parse_history;
use smc_history::{History, Label, ProcId};
use smc_programs::bakery::bakery;
use smc_programs::interp::ProgramWorkload;
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::{RcMem, SyncMode};

fn verdict(h: &History, m: &ModelSpec) -> &'static str {
    match check(h, m) {
        Verdict::Allowed(_) => "allowed",
        Verdict::Disallowed => "forbidden",
        _ => "undecided",
    }
}

fn show(h: &History) {
    for line in h.to_string().lines() {
        println!("      {line}");
    }
}

fn main() {
    println!("§2  THE MODEL");
    println!("    A memory model = the histories for which every processor has a");
    println!("    legal sequential view, under three parameters: which remote");
    println!("    operations the view includes, mutual consistency across views,");
    println!("    and an ordering derived from the history.\n");

    println!("§3.1  Sequential consistency: one common legal view.");
    let h = parse_history("p: w(x)1\nq: r(x)1 r(x)1").unwrap();
    show(&h);
    println!("      SC: {}\n", verdict(&h, &models::sc()));

    println!("§3.2  TSO: store buffers. Figure 1 separates it from SC.");
    let fig1 = parse_history("p: w(x)1 r(y)0\nq: w(y)1 r(x)0").unwrap();
    show(&fig1);
    println!(
        "      SC: {}   TSO: {}",
        verdict(&fig1, &models::sc()),
        verdict(&fig1, &models::tso())
    );
    if let Verdict::Allowed(w) = check(&fig1, &models::tso()) {
        for (p, view) in w.views.iter().enumerate() {
            println!("      {}", format_view(&fig1, ProcId(p as u32), view));
        }
    }
    println!();

    println!("§3.3  Processor consistency (DASH): coherence + semi-causality.");
    let fig2 = parse_history("p: w(x)1\nq: r(x)1 w(y)1\nr: r(y)1 r(x)0").unwrap();
    show(&fig2);
    println!(
        "      TSO: {}   PC: {}   (Figure 2)\n",
        verdict(&fig2, &models::tso()),
        verdict(&fig2, &models::pc())
    );

    println!("§3.4  Release consistency: labeled vs ordinary operations.");
    let mp = parse_history("q: w(d)1 wl(s)1\np: rl(s)1 r(d)0").unwrap();
    show(&mp);
    println!(
        "      RC_sc: {}   RC_pc: {}   (bracketing forbids the stale read)\n",
        verdict(&mp, &models::rc_sc()),
        verdict(&mp, &models::rc_pc())
    );

    println!("§3.5  PRAM and causal memory.");
    let fig3 = parse_history("p: w(x)1 r(x)1 r(x)2\nq: w(x)2 r(x)2 r(x)1").unwrap();
    show(&fig3);
    println!(
        "      TSO: {}   PRAM: {}   Causal: {}   (Figure 3)",
        verdict(&fig3, &models::tso()),
        verdict(&fig3, &models::pram()),
        verdict(&fig3, &models::causal())
    );
    let fig4 =
        parse_history("p: w(x)1 w(y)1\nq: r(y)1 w(z)1 r(x)2\nr: w(x)2 r(x)1 r(z)1 r(y)1").unwrap();
    show(&fig4);
    println!(
        "      TSO: {}   Causal: {}   PC: {}   (Figure 4)\n",
        verdict(&fig4, &models::tso()),
        verdict(&fig4, &models::causal()),
        verdict(&fig4, &models::pc())
    );

    println!("§4  RELATING MEMORIES (Figure 5)");
    println!("    Set inclusion of admitted histories — checked on the figures:");
    for (name, h) in [
        ("fig1", &fig1),
        ("fig2", &fig2),
        ("fig3", &fig3),
        ("fig4", &fig4),
    ] {
        println!(
            "      {name}:  SC {:<9} TSO {:<9} PC {:<9} Causal {:<9} PRAM {}",
            verdict(h, &models::sc()),
            verdict(h, &models::tso()),
            verdict(h, &models::pc()),
            verdict(h, &models::causal()),
            verdict(h, &models::pram())
        );
    }
    println!("    (run fig5_lattice for the exhaustive-universe version)\n");

    println!("§5  THE BAKERY ALGORITHM DISTINGUISHES RC_sc AND RC_pc");
    let program = bakery(2, Label::Labeled);
    let cfg = ExploreConfig {
        collect_histories: false,
        max_states: 3_000_000,
        ..Default::default()
    };
    let w = ProgramWorkload::new(program.clone(), 12);
    let sc_out = explore(&RcMem::new(SyncMode::Sc, 2, program.num_locs()), &w, &cfg);
    let w = ProgramWorkload::new(program.clone(), 12);
    let pc_out = explore(&RcMem::new(SyncMode::Pc, 2, program.num_locs()), &w, &cfg);
    println!(
        "    RC_sc machine, every schedule: violation = {:?}",
        sc_out.violation.as_ref().map(|(m, _)| m)
    );
    println!(
        "    RC_pc machine: violation = {:?}",
        pc_out.violation.as_ref().map(|(m, _)| m.as_str())
    );
    assert!(sc_out.violation.is_none() && pc_out.violation.is_some());
    println!();

    println!("§7  NEW MEMORIES FROM THE PARAMETERS");
    println!(
        "      fig3 under Causal+Coherence: {} (coherence added to causal memory)",
        verdict(&fig3, &models::causal_coherent())
    );
    println!(
        "      fig4 under Causal+Coherence: {} (a causal history it newly forbids)",
        verdict(&fig4, &models::causal_coherent())
    );
    println!("\nTour complete — every claim above was just re-established live.");
}

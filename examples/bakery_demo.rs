//! Run Lamport's Bakery algorithm on every operational memory and watch
//! where mutual exclusion survives.
//!
//! ```sh
//! cargo run -p smc-bench --example bakery_demo
//! ```
//!
//! Reproduces the paper's Section 5 conclusion operationally: with all
//! synchronization operations labeled, the algorithm is correct on the
//! `RC_sc` machine and fails on the `RC_pc` machine. As a bonus it shows
//! the unlabeled variant breaking on plain TSO — the same store-buffer
//! effect, thirty years older.

use smc_history::Label;
use smc_programs::bakery::bakery;
use smc_programs::interp::ProgramWorkload;
use smc_sim::mem::MemorySystem;
use smc_sim::rc::{RcMem, SyncMode};
use smc_sim::sched::run_random;
use smc_sim::{ScMem, TsoMem};

fn trial<M: MemorySystem>(
    mem_of: impl Fn() -> M,
    program: &smc_programs::Program,
) -> (usize, usize) {
    let runs = 1_000;
    let mut violations = 0;
    for seed in 0..runs {
        let w = ProgramWorkload::new(program.clone(), 200);
        let r = run_random(mem_of(), w, seed as u64, 100_000);
        if r.violation.is_some() {
            violations += 1;
        }
    }
    (violations, runs)
}

fn main() {
    let n = 2;
    let labeled = bakery(n, Label::Labeled);
    let ordinary = bakery(n, Label::Ordinary);
    let locs = labeled.num_locs();

    println!("Bakery algorithm, n = {n}, 1000 random schedules per memory:\n");
    println!("{:<44} violations", "memory / labeling");
    println!("{:-<56}", "");

    let (v, r) = trial(|| ScMem::new(n, locs), &ordinary);
    println!("{:<44} {v}/{r}", "SC (atomic memory), ordinary ops");
    assert_eq!(v, 0);

    let (v, r) = trial(|| TsoMem::new(n, locs), &ordinary);
    println!("{:<44} {v}/{r}", "TSO (store buffers), ordinary ops");
    assert!(v > 0, "TSO should break the unlabeled Bakery");

    let (v, r) = trial(|| RcMem::new(SyncMode::Sc, n, locs), &labeled);
    println!(
        "{:<44} {v}/{r}",
        "RC_sc (labeled ops sequentially consistent)"
    );
    assert_eq!(v, 0);

    let (v, r) = trial(|| RcMem::new(SyncMode::Pc, n, locs), &labeled);
    println!("{:<44} {v}/{r}", "RC_pc (labeled ops processor consistent)");
    assert!(v > 0, "RC_pc should break the Bakery");

    println!(
        "\nExactly the paper's Section 5: the Bakery algorithm runs correctly \
         with RC_sc\nbut fails with RC_pc — the two release-consistency variants \
         are NOT equivalent\nfor algorithms that coordinate with plain reads and \
         writes."
    );
}

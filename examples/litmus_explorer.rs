//! Enumerate every history each operational machine can produce for a
//! small program, and cross-check each against the declarative models.
//!
//! ```sh
//! cargo run -p smc-bench --example litmus_explorer
//! ```
//!
//! This is the workspace's soundness story in miniature: for every
//! machine/model pair `(M, M̂)`, every history the machine `M` produces
//! must be admitted by its declarative characterization `M̂`.

use smc_core::checker::check;
use smc_core::models;
use smc_core::spec::ModelSpec;
use smc_history::History;
use smc_sim::explore::{explore, ExploreConfig};
use smc_sim::mem::MemorySystem;
use smc_sim::workload::{Access, OpScript};
use smc_sim::{CausalMem, PcMem, PramMem, ScMem, TsoMem};

fn enumerate<M: MemorySystem>(mem: M, script: &OpScript) -> Vec<History> {
    explore(&mem, script, &ExploreConfig::default()).histories
}

fn report(name: &str, histories: &[History], model: &ModelSpec) {
    let admitted = histories
        .iter()
        .filter(|h| check(h, model).is_allowed())
        .count();
    println!(
        "  {name:<8} machine: {:>3} distinct histories, {admitted:>3} admitted by the {} model {}",
        histories.len(),
        model.name,
        if admitted == histories.len() {
            "✓"
        } else {
            "✗ SOUNDNESS BUG"
        }
    );
    assert_eq!(admitted, histories.len());
}

fn main() {
    // Store buffering: the canonical 2×2 shape.
    let script = OpScript::new(
        vec![
            vec![Access::write(0, 1), Access::read(1)],
            vec![Access::write(1, 1), Access::read(0)],
        ],
        2,
    );
    println!("Program: p0: w(x)1 r(y)  |  p1: w(y)1 r(x)\n");
    println!("Exhaustive machine enumeration vs declarative admission:");

    let sc = enumerate(ScMem::new(2, 2), &script);
    let tso = enumerate(TsoMem::new(2, 2), &script);
    let pc = enumerate(PcMem::new(2, 2), &script);
    let pram = enumerate(PramMem::new(2, 2), &script);
    let causal = enumerate(CausalMem::new(2, 2), &script);

    report("SC", &sc, &models::sc());
    report("TSO", &tso, &models::tso());
    report("PC", &pc, &models::pc());
    report("PRAM", &pram, &models::pram());
    report("Causal", &causal, &models::causal());

    println!("\nHistory counts order the machines by strength:");
    println!(
        "  SC {} ≤ TSO {} ≤ PC {} / Causal {} ≤ PRAM {}",
        sc.len(),
        tso.len(),
        pc.len(),
        causal.len(),
        pram.len()
    );

    // Show the histories TSO adds over SC.
    println!("\nHistories the TSO machine produces that SC cannot:");
    let sc_keys: Vec<String> = sc.iter().map(History::to_string).collect();
    for h in &tso {
        if !sc_keys.contains(&h.to_string()) {
            for line in h.to_string().lines() {
                println!("    {line}");
            }
            println!();
        }
    }
}
